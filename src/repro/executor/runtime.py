"""Execution context and metrics.

The executor counts the *same* cost units the optimizer estimates (see
:mod:`repro.optimizer.cost`), against actual row counts. That makes the
"execution time" rows of the reproduced experiment tables deterministic and
hardware-independent, while wall-clock time is also reported for reference.

Two optional observability layers sit on top (both off by default and
near-free when off):

* ``ExecutionContext.op_stats`` — per-operator actuals (invocations, rows
  out, inclusive wall time), keyed by ``id(plan node)``, for EXPLAIN
  ANALYZE.
* ``ExecutionMetrics.spool_stats`` — per-CSE spool accounting (writes vs.
  reads, rows per read, cost-unit attribution per Definition 5.1), always
  collected: the property suite asserts sharing invariants on it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..obs import NULL_REGISTRY, NULL_TRACER, MetricsRegistry, OperatorStats, Tracer
from ..optimizer.cost import CostModel
from ..storage.database import Database
from ..storage.worktable import WorkTable

if TYPE_CHECKING:  # avoid the executor → serve → executor import cycle
    from ..serve.governor import CancellationToken
    from .scans import ScanManager


@dataclass
class SpoolStats:
    """Materialization vs. consumption accounting for one CSE spool.

    Definition 5.1 splits a spool's cost into the *initial* cost (evaluate
    the body once and write it: ``C_E + C_W``) and the per-consumer *usage*
    cost (``C_R``). ``write_cost_units``/``read_cost_units`` are the
    measured counterparts of those two terms."""

    writes: int = 0
    reads: int = 0
    rows_written: int = 0
    rows_read: int = 0
    #: rows returned by each individual read — the property suite asserts
    #: every entry equals ``rows_written`` (producer rows == consumer rows).
    read_row_counts: List[int] = field(default_factory=list)
    write_cost_units: float = 0.0
    #: the ``C_E`` share of ``write_cost_units`` — the body-evaluation
    #: charge alone, before the write charge; the sharing ledger uses
    #: the split to compute measured Def 5.1 savings.
    body_cost_units: float = 0.0
    read_cost_units: float = 0.0
    materialize_wall_time: float = 0.0
    #: cumulative wall time spent inside spool reads (all consumers).
    read_wall_time: float = 0.0

    def merge(self, other: "SpoolStats") -> None:
        """Accumulate another spool's stats into this one."""
        self.writes += other.writes
        self.reads += other.reads
        self.rows_written += other.rows_written
        self.rows_read += other.rows_read
        self.read_row_counts.extend(other.read_row_counts)
        self.write_cost_units += other.write_cost_units
        self.body_cost_units += other.body_cost_units
        self.read_cost_units += other.read_cost_units
        self.materialize_wall_time += other.materialize_wall_time
        self.read_wall_time += other.read_wall_time


@dataclass
class ScanStats:
    """Shared-scan accounting for one (table, needed-columns) group.

    The scan-leaf analogue of :class:`SpoolStats`: Def 5.1 with
    ``C_W = 0`` (nothing is written — consumers alias the same arrays)
    and ``C_R ≈ 0``, so the saving is ``(n - 1) · C_E``. The fields are
    formulated so merged totals are identical whether the physical fetch
    happened in a dedicated prewarm task (parallel) or at the first
    consumer (serial)."""

    #: consumer-side resolutions of this group (one per scan execution).
    reads: int = 0
    #: physical fetches actually performed (1 per batch when shared).
    physical_scans: int = 0
    #: the table's row count (merge keeps the max, not the sum).
    rows: int = 0
    #: rows actually produced by physical fetches.
    rows_scanned: int = 0
    #: cost units charged for the physical work (scan + shared filter).
    cost_units: float = 0.0

    @property
    def shared(self) -> int:
        """Reads served without a physical scan."""
        return max(0, self.reads - self.physical_scans)

    @property
    def rows_saved(self) -> int:
        """Rows the consumers did not have to re-scan."""
        return max(0, self.rows * self.reads - self.rows_scanned)

    def merge(self, other: "ScanStats") -> None:
        self.reads += other.reads
        self.physical_scans += other.physical_scans
        self.rows = max(self.rows, other.rows)
        self.rows_scanned += other.rows_scanned
        self.cost_units += other.cost_units


class KeyFactorCache:
    """Batch-scoped memo of per-column key factorizations.

    ``np.unique(col, return_inverse=True)`` dominates join/group-by key
    processing, and a shared batch evaluates it repeatedly over the *same*
    physical arrays: spool reads alias the producer worktable's columns and
    shared scans alias the cached fetch, so every consumer of a CSE hands
    the identical ndarray objects back to ``_joint_codes``. This cache
    keys on array identity — ``id(col)`` plus a strong reference to the
    array itself, which both pins the id against reuse and lets a cheap
    ``is`` check reject hash collisions from a dead object's recycled id.

    Lifetime is one batch execution (created per ``execute`` call, shared
    across parallel tasks like ``spools``), so entries never outlive the
    frames they describe. Thread-safe: lookups and inserts take one lock;
    a racing duplicate factorization is harmless (last write wins, values
    are equal).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: id(col) -> (col, uniques, inverse codes)
        self._entries: Dict[
            int, Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        self.factorizations = 0
        self.reuses = 0

    def factorize(
        self, col: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(uniques, int64 inverse codes)`` for one key column."""
        key = id(col)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is col:
                self.reuses += 1
                return entry[1], entry[2]
        uniques, inverse = np.unique(col, return_inverse=True)
        inverse = inverse.astype(np.int64, copy=False)
        with self._lock:
            self.factorizations += 1
            self._entries[key] = (col, uniques, inverse)
        return uniques, inverse


class SharedSpoolPool:
    """Refcounted spool storage for one coordinator-merged batch.

    The cross-session coordinator materializes each shared spool exactly
    once (the producer phase), then serves every consumer from this pool.
    ``publish`` records how many consumers will read a spool; each
    consumer ``attach``-es the worktable (aliasing, never copying) and
    ``detach``-es when its queries finish. The last detach drops the
    pool's reference so the arrays become collectable as soon as no
    consumer result aliases them — spools never wait for the whole merged
    batch to drain.

    Thread-safe: consumers run on their own session threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tables: Dict[str, WorkTable] = {}
        self._refcounts: Dict[str, int] = {}
        self.published = 0
        self.freed = 0

    def publish(self, cse_id: str, table: WorkTable, consumers: int) -> None:
        """Register a materialized spool with its consumer refcount.

        A spool no consumer reads (``consumers == 0``) is dropped
        immediately — it never occupies the pool."""
        with self._lock:
            self.published += 1
            if consumers <= 0:
                self.freed += 1
                return
            self._tables[cse_id] = table
            self._refcounts[cse_id] = consumers

    def attach(self, cse_id: str) -> WorkTable:
        """The published worktable for ``cse_id`` (error if unknown/freed)."""
        with self._lock:
            try:
                return self._tables[cse_id]
            except KeyError:
                from ..errors import ExecutionError

                raise ExecutionError(
                    f"shared spool {cse_id!r} attached after free "
                    "(refcount underflow) or before publication"
                ) from None

    def detach(self, cse_id: str) -> bool:
        """Drop one consumer reference; True when this detach freed it."""
        with self._lock:
            remaining = self._refcounts.get(cse_id, 0) - 1
            if remaining > 0:
                self._refcounts[cse_id] = remaining
                return False
            self._refcounts.pop(cse_id, None)
            if self._tables.pop(cse_id, None) is not None:
                self.freed += 1
                return True
            return False

    @property
    def live(self) -> int:
        """Spools currently held (published minus freed)."""
        with self._lock:
            return len(self._tables)


@dataclass
class ExecutionMetrics:
    """Deterministic work counters accumulated during execution."""

    cost_units: float = 0.0
    rows_scanned: int = 0
    rows_joined: int = 0
    rows_aggregated: int = 0
    rows_output: int = 0
    spool_rows_written: int = 0
    spool_rows_read: int = 0
    spools_materialized: int = 0
    operator_invocations: int = 0
    #: join/group-by key columns factorized (``np.unique`` actually run)
    #: vs. served from the batch's :class:`KeyFactorCache`. Copied from
    #: the cache once per batch (the cache is shared across tasks, so
    #: per-task metrics never carry partial counts).
    key_factorizations: int = 0
    key_factor_reuses: int = 0
    spool_stats: Dict[str, SpoolStats] = field(default_factory=dict)
    #: per-(table, column-set) shared-scan accounting, keyed like
    #: ``"lineitem[l_orderkey+l_quantity]"``.
    scan_stats: Dict[str, ScanStats] = field(default_factory=dict)

    def spool(self, cse_id: str) -> SpoolStats:
        """The (created-on-demand) per-spool stats for ``cse_id``."""
        stats = self.spool_stats.get(cse_id)
        if stats is None:
            stats = self.spool_stats[cse_id] = SpoolStats()
        return stats

    def scan(self, key: str) -> ScanStats:
        """The (created-on-demand) per-scan-group stats for ``key``."""
        stats = self.scan_stats.get(key)
        if stats is None:
            stats = self.scan_stats[key] = ScanStats()
        return stats

    def merge(self, other: "ExecutionMetrics") -> None:
        """Accumulate another metrics object into this one."""
        self.cost_units += other.cost_units
        self.rows_scanned += other.rows_scanned
        self.rows_joined += other.rows_joined
        self.rows_aggregated += other.rows_aggregated
        self.rows_output += other.rows_output
        self.spool_rows_written += other.spool_rows_written
        self.spool_rows_read += other.spool_rows_read
        self.spools_materialized += other.spools_materialized
        self.operator_invocations += other.operator_invocations
        self.key_factorizations += other.key_factorizations
        self.key_factor_reuses += other.key_factor_reuses
        for cse_id, stats in other.spool_stats.items():
            self.spool(cse_id).merge(stats)
        for key, scan in other.scan_stats.items():
            self.scan(key).merge(scan)

    def publish(self, registry: MetricsRegistry) -> None:
        """Mirror the totals into a registry as executor.* counters."""
        if not registry.enabled:
            return
        registry.counter("executor.cost_units", self.cost_units)
        registry.counter("executor.rows_scanned", self.rows_scanned)
        registry.counter("executor.rows_joined", self.rows_joined)
        registry.counter("executor.rows_aggregated", self.rows_aggregated)
        registry.counter("executor.rows_output", self.rows_output)
        registry.counter("executor.spool_rows_written", self.spool_rows_written)
        registry.counter("executor.spool_rows_read", self.spool_rows_read)
        registry.counter("executor.spools_materialized", self.spools_materialized)
        registry.counter("executor.spool_reads", sum(
            s.reads for s in self.spool_stats.values()
        ))
        registry.counter(
            "executor.operator_invocations", self.operator_invocations
        )
        if self.key_factorizations or self.key_factor_reuses:
            registry.counter(
                "executor.key_factorizations", self.key_factorizations
            )
            registry.counter(
                "executor.key_factor_reuses", self.key_factor_reuses
            )
        if self.scan_stats:
            registry.counter("executor.scan.reads", sum(
                s.reads for s in self.scan_stats.values()
            ))
            registry.counter("executor.scan.physical", sum(
                s.physical_scans for s in self.scan_stats.values()
            ))
            registry.counter("executor.scan.shared", sum(
                s.shared for s in self.scan_stats.values()
            ))
            registry.counter("executor.scan.rows_saved", sum(
                s.rows_saved for s in self.scan_stats.values()
            ))


@dataclass
class ExecutionContext:
    """Shared state for one bundle execution: the database, materialized
    spools, accumulated metrics, and (optional) per-operator actuals."""

    database: Database
    cost_model: CostModel = field(default_factory=CostModel)
    spools: Dict[str, WorkTable] = field(default_factory=dict)
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)
    registry: MetricsRegistry = field(default_factory=lambda: NULL_REGISTRY)
    #: ``id(plan node) -> OperatorStats``; None disables collection so the
    #: hot path pays a single ``is None`` check per operator.
    op_stats: Optional[Dict[int, OperatorStats]] = None
    #: cooperative cancellation/budget state, shared by every task of one
    #: batch (:mod:`repro.serve.governor`); None disables the checks so an
    #: ungoverned run pays a single ``is None`` branch per operator.
    token: Optional["CancellationToken"] = None
    #: trace sink; the disabled :data:`~repro.obs.NULL_TRACER` by default,
    #: so uninstrumented runs pay one ``enabled`` check per operator.
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)
    #: ``cse_id -> span_id`` of each spool's materialization span. Shared
    #: across a batch's contexts (like ``spools``) so consumer-side reads
    #: can emit producer→consumer flow events; written before the spool
    #: itself is published, so the same happens-before edge that makes
    #: ``spools`` safe covers it.
    spool_spans: Dict[str, int] = field(default_factory=dict)
    #: batch-wide shared-scan manager (engine v2). None falls back to the
    #: per-consumer physical scan of v1.
    scans: Optional["ScanManager"] = None
    #: batch-wide key-factorization memo, shared across tasks like
    #: ``spools``. None disables memoization (every join/group-by
    #: factorizes its keys from scratch).
    factor_cache: Optional[KeyFactorCache] = None
    #: morsel size for fused streaming pipelines (rows per morsel).
    morsel_rows: int = 4096

    def stats_for(self, node: object) -> OperatorStats:
        """The (created-on-demand) stats slot for one plan node."""
        assert self.op_stats is not None
        stats = self.op_stats.get(id(node))
        if stats is None:
            stats = self.op_stats[id(node)] = OperatorStats()
        return stats

    def spool(self, cse_id: str) -> WorkTable:
        """A materialized spool by id (error if missing)."""
        try:
            return self.spools[cse_id]
        except KeyError:
            from ..errors import ExecutionError

            raise ExecutionError(
                f"spool {cse_id!r} read before materialization"
            ) from None
