"""Execution of optimized plan bundles.

Evaluation order: shared (root-level) spools in dependency order, then for
each query its scalar subqueries, then the main plan with subquery results
bound as constants. Per-query results and batch-wide metrics are returned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ExecutionError
from ..expr.evaluator import Frame, evaluate, frame_length
from ..expr.expressions import Expr, Literal
from ..logical.blocks import ScalarSubquery
from ..obs import NULL_REGISTRY, NULL_TRACER, MetricsRegistry, OperatorStats, Tracer
from ..optimizer.cost import CostModel
from ..optimizer.engine import PlanBundle, QueryPlan
from ..optimizer.physical import (
    FusedStage,
    PhysFilter,
    PhysFusedPipeline,
    PhysHashAgg,
    PhysHashJoin,
    PhysIndexScan,
    PhysProject,
    PhysScan,
    PhysSort,
    PhysSpoolDef,
    PhysSpoolRead,
    PhysicalPlan,
)
from ..optimizer.aggs import AggCompute
from ..storage.database import Database
from .iterators import execute_node, materialize_spool, sort_order_for
from .runtime import ExecutionContext, ExecutionMetrics, KeyFactorCache
from .scans import ScanManager

if TYPE_CHECKING:  # avoid the executor → serve → executor import cycle
    from ..serve.governor import CancellationToken


@dataclass
class QueryResult:
    """One query's rows, column-named."""

    name: str
    columns: List[str]
    rows: List[Tuple[Any, ...]]

    @property
    def row_count(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    def sorted_rows(self) -> List[Tuple[Any, ...]]:
        """Rows in a canonical order (for order-insensitive comparison)."""
        return sorted(self.rows, key=repr)


@dataclass
class BatchResult:
    """Results and metrics of executing a plan bundle."""

    results: List[QueryResult]
    metrics: ExecutionMetrics
    wall_time: float = 0.0
    #: per-operator actuals keyed by ``id(plan node)``; populated when the
    #: executor ran with ``collect_op_stats=True`` (EXPLAIN ANALYZE).
    op_stats: Optional[Dict[int, OperatorStats]] = None
    #: the plan objects actually executed per query — differs from the
    #: bundle's plans when scalar subqueries were bound to constants.
    executed_plans: Dict[str, PhysicalPlan] = field(default_factory=dict)

    def query(self, name: str) -> QueryResult:
        """One query's result, by name."""
        for result in self.results:
            if result.name == name:
                return result
        raise ExecutionError(f"no result for query {name!r}")

    def stats_for(self, node: PhysicalPlan) -> Optional[OperatorStats]:
        """Recorded actuals for one executed plan node, if any."""
        if self.op_stats is None:
            return None
        return self.op_stats.get(id(node))


class Executor:
    """Executes plan bundles against a database."""

    def __init__(
        self,
        database: Database,
        cost_model: Optional[CostModel] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        shared_scans: bool = True,
        morsel_rows: int = 4096,
    ) -> None:
        self.database = database
        self.cost_model = cost_model or CostModel()
        self.registry = registry or NULL_REGISTRY
        self.tracer = tracer or NULL_TRACER
        #: engine v2: one physical scan per (table, column-set) per batch.
        self.shared_scans = shared_scans
        #: morsel size for fused streaming pipelines.
        self.morsel_rows = morsel_rows

    def execute(
        self,
        bundle: PlanBundle,
        collect_op_stats: bool = False,
        token: Optional["CancellationToken"] = None,
    ) -> BatchResult:
        """Execute a bundle: spools, subqueries, then each query.

        With ``collect_op_stats=True`` the result carries per-operator
        actuals (rows, wall time) for EXPLAIN ANALYZE rendering. ``token``
        (a :class:`~repro.serve.governor.CancellationToken`) arms the
        cooperative deadline/budget checkpoints in the operator loop."""
        start = time.perf_counter()
        factor_cache = KeyFactorCache()
        ctx = ExecutionContext(
            database=self.database,
            cost_model=self.cost_model,
            registry=self.registry,
            op_stats={} if collect_op_stats else None,
            token=token,
            tracer=self.tracer,
            scans=ScanManager() if self.shared_scans else None,
            morsel_rows=self.morsel_rows,
            factor_cache=factor_cache,
        )
        executed_plans: Dict[str, PhysicalPlan] = {}
        results: List[QueryResult] = []
        with self.tracer.span(
            "execute_batch", queries=len(bundle.queries), workers=1
        ):
            for cse_id, body in bundle.root_spools:
                if cse_id not in ctx.spools:
                    ctx.spools[cse_id] = materialize_spool(cse_id, body, ctx)
            for query_plan in bundle.queries:
                result, plan = self._execute_query(query_plan, ctx)
                results.append(result)
                executed_plans[query_plan.name] = plan
        wall = time.perf_counter() - start
        ctx.metrics.key_factorizations = factor_cache.factorizations
        ctx.metrics.key_factor_reuses = factor_cache.reuses
        ctx.metrics.publish(self.registry)
        self.registry.timer_add("executor.wall", wall)
        return BatchResult(
            results=results,
            metrics=ctx.metrics,
            wall_time=wall,
            op_stats=ctx.op_stats,
            executed_plans=executed_plans,
        )

    # ------------------------------------------------------------------

    def _execute_query(
        self, query_plan: QueryPlan, ctx: ExecutionContext
    ) -> Tuple[QueryResult, PhysicalPlan]:
        with ctx.tracer.span("query", name=query_plan.name):
            return self._execute_query_inner(query_plan, ctx)

    def _execute_query_inner(
        self, query_plan: QueryPlan, ctx: ExecutionContext
    ) -> Tuple[QueryResult, PhysicalPlan]:
        scalars: Dict[Expr, Expr] = {}
        for sid, sub_plan in query_plan.subquery_plans.items():
            value, data_type = self._execute_scalar(sub_plan, ctx)
            scalars[ScalarSubquery(sid)] = Literal(value, data_type)
        plan = query_plan.plan
        if scalars:
            plan = bind_scalars(plan, scalars)
        names, columns = self._run_named(plan, ctx)
        rows = (
            list(zip(*[c.tolist() for c in columns])) if columns else []
        )
        ctx.metrics.rows_output += len(rows)
        return QueryResult(name=query_plan.name, columns=names, rows=rows), plan

    def _execute_scalar(
        self, plan: PhysicalPlan, ctx: ExecutionContext
    ) -> Tuple[Any, Any]:
        names, columns = self._run_named(plan, ctx)
        if len(columns) != 1:
            raise ExecutionError(
                f"scalar subquery produced {len(columns)} columns"
            )
        column = columns[0]
        if len(column) != 1:
            raise ExecutionError(
                f"scalar subquery produced {len(column)} rows"
            )
        value = column[0]
        if isinstance(value, np.generic):
            value = value.item()
        from ..types import literal_type

        return value, literal_type(value)

    def _run_named(
        self, plan: PhysicalPlan, ctx: ExecutionContext
    ) -> Tuple[List[str], List[np.ndarray]]:
        """Evaluate a finalized plan ([Sort] → Project → …) to named columns."""
        sort_items = None
        node = plan
        spool_defs: List[PhysSpoolDef] = []
        while isinstance(node, (PhysSort, PhysSpoolDef)):
            if isinstance(node, PhysSort):
                sort_items = node.sort_items
                node = node.child
            else:
                spool_defs.append(node)
                node = node.child
        for spool_def in spool_defs:
            for cse_id, body in spool_def.spools:
                if cse_id not in ctx.spools:
                    ctx.spools[cse_id] = materialize_spool(cse_id, body, ctx)
        if not isinstance(node, PhysProject):
            raise ExecutionError("finalized plan must end in a projection")
        start = time.perf_counter()
        frame = execute_node(node.child, ctx)
        ctx.metrics.cost_units += ctx.cost_model.project(
            frame_length(frame), len(node.outputs)
        )
        names = [out.name for out in node.outputs]
        columns = [evaluate(out.expr, frame) for out in node.outputs]
        if sort_items:
            ctx.metrics.cost_units += ctx.cost_model.sort(frame_length(frame))
            order = sort_order_for(sort_items, frame)
            columns = [c[order] for c in columns]
        if ctx.op_stats is not None:
            # The finalization chain (Project, Sort, SpoolDef) bypasses
            # execute_node; record its nodes so analyze output is complete.
            rows = len(columns[0]) if columns else 0
            elapsed = time.perf_counter() - start
            for top_node in _finalizer_chain(plan, node):
                stats = ctx.stats_for(top_node)
                stats.invocations += 1
                stats.rows_out += rows
                stats.wall_time += elapsed
                stats.add_timer("finalize", elapsed)
        return names, columns


def _finalizer_chain(
    plan: PhysicalPlan, project: PhysicalPlan
) -> List[PhysicalPlan]:
    """The wrapper nodes from a finalized plan's top down to its projection
    (Sort/SpoolDef then Project) — the nodes `_run_named` evaluates itself."""
    chain: List[PhysicalPlan] = []
    node = plan
    while node is not project and isinstance(node, (PhysSort, PhysSpoolDef)):
        chain.append(node)
        node = node.child
    chain.append(project)
    return chain


# ---------------------------------------------------------------------------
# Scalar-subquery binding: rebuild plans with substituted expressions
# ---------------------------------------------------------------------------


def _sub(expr: Expr, mapping: Dict[Expr, Expr]) -> Expr:
    return expr.substitute(mapping)


def _sub_all(exprs, mapping):
    return tuple(_sub(e, mapping) for e in exprs)


def bind_scalars(plan: PhysicalPlan, mapping: Dict[Expr, Expr]) -> PhysicalPlan:
    """A copy of ``plan`` with every :class:`ScalarSubquery` replaced by its
    computed constant."""
    if isinstance(plan, PhysScan):
        return PhysScan(
            table_ref=plan.table_ref,
            conjuncts=_sub_all(plan.conjuncts, mapping),
            outputs=plan.outputs,
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysIndexScan):
        return PhysIndexScan(
            table_ref=plan.table_ref,
            column=plan.column,
            low=plan.low,
            high=plan.high,
            low_inclusive=plan.low_inclusive,
            high_inclusive=plan.high_inclusive,
            residual=_sub_all(plan.residual, mapping),
            outputs=plan.outputs,
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysHashJoin):
        return PhysHashJoin(
            left=bind_scalars(plan.left, mapping),
            right=bind_scalars(plan.right, mapping),
            keys=plan.keys,
            residual=_sub_all(plan.residual, mapping),
            outputs=plan.outputs,
            est_rows=plan.est_rows,
            join_type=plan.join_type,
        )
    if isinstance(plan, PhysHashAgg):
        computes = tuple(
            AggCompute(
                out=c.out,
                func=c.func,
                arg=None if c.arg is None else _sub(c.arg, mapping),
            )
            for c in plan.computes
        )
        return PhysHashAgg(
            child=bind_scalars(plan.child, mapping),
            keys=plan.keys,
            computes=computes,
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysFilter):
        return PhysFilter(
            child=bind_scalars(plan.child, mapping),
            conjuncts=_sub_all(plan.conjuncts, mapping),
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysProject):
        from ..logical.blocks import OutputColumn

        outputs = tuple(
            OutputColumn(name=o.name, expr=_sub(o.expr, mapping))
            for o in plan.outputs
        )
        return PhysProject(
            child=bind_scalars(plan.child, mapping),
            outputs=outputs,
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysSort):
        items = tuple((_sub(e, mapping), d) for e, d in plan.sort_items)
        return PhysSort(
            child=bind_scalars(plan.child, mapping),
            sort_items=items,
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysSpoolRead):
        return plan
    if isinstance(plan, PhysFusedPipeline):
        return PhysFusedPipeline(
            source=bind_scalars(plan.source, mapping),
            stages=tuple(
                FusedStage(
                    kind=s.kind,
                    exprs=_sub_all(s.exprs, mapping),
                    est_rows=s.est_rows,
                )
                for s in plan.stages
            ),
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysSpoolDef):
        return PhysSpoolDef(
            spools=tuple(
                (cid, bind_scalars(body, mapping)) for cid, body in plan.spools
            ),
            child=bind_scalars(plan.child, mapping),
            est_rows=plan.est_rows,
        )
    raise ExecutionError(f"cannot bind scalars in {type(plan).__name__}")
