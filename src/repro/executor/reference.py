"""Reference (oracle) evaluator for bound queries.

A deliberately simple row-at-a-time evaluator, independent of the optimizer
and the vectorized executor: tables are joined in textual order with hash
joins on the block's equality conjuncts, predicates are evaluated per row,
grouping uses plain dictionaries. The integration and property tests compare
every optimized plan's output — with and without CSEs — against this oracle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..expr.expressions import (
    AggExpr,
    AggFunc,
    And,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
    Or,
)
from ..logical.blocks import BoundBatch, BoundQuery, QueryBlock, ScalarSubquery
from ..storage.database import Database

Row = Dict[ColumnRef, Any]


def _eval_scalar(expr: Expr, row: Row, aggs: Optional[Dict[AggExpr, Any]] = None,
                 scalars: Optional[Dict[str, Any]] = None) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return row[expr]
    if isinstance(expr, AggExpr):
        if aggs is None or expr not in aggs:
            raise ExecutionError(f"aggregate {expr!r} not available")
        return aggs[expr]
    if isinstance(expr, ScalarSubquery):
        if scalars is None or expr.subquery_id not in scalars:
            raise ExecutionError(f"subquery {expr.subquery_id!r} not bound")
        return scalars[expr.subquery_id]
    if isinstance(expr, Comparison):
        left = _eval_scalar(expr.left, row, aggs, scalars)
        right = _eval_scalar(expr.right, row, aggs, scalars)
        if left is None or right is None:
            return None  # SQL: comparison with NULL is NULL
        return _compare(expr.op, left, right)
    if isinstance(expr, And):
        # Kleene AND: FALSE dominates, then NULL, then TRUE.
        saw_null = False
        for t in expr.terms:
            value = _eval_scalar(t, row, aggs, scalars)
            if value is None:
                saw_null = True
            elif not value:
                return False
        return None if saw_null else True
    if isinstance(expr, Or):
        # Kleene OR: TRUE dominates, then NULL, then FALSE.
        saw_null = False
        for t in expr.terms:
            value = _eval_scalar(t, row, aggs, scalars)
            if value is None:
                saw_null = True
            elif value:
                return True
        return None if saw_null else False
    if isinstance(expr, Not):
        value = _eval_scalar(expr.term, row, aggs, scalars)
        return None if value is None else (not value)
    if isinstance(expr, Arithmetic):
        left = _eval_scalar(expr.left, row, aggs, scalars)
        right = _eval_scalar(expr.right, row, aggs, scalars)
        if left is None or right is None:
            return None
        if expr.op is ArithmeticOp.ADD:
            return left + right
        if expr.op is ArithmeticOp.SUB:
            return left - right
        if expr.op is ArithmeticOp.MUL:
            return left * right
        if expr.op is ArithmeticOp.DIV:
            return left / right
    raise ExecutionError(f"oracle cannot evaluate {expr!r}")


def _compare(op: ComparisonOp, left: Any, right: Any) -> bool:
    # bool(): column values are numpy scalars, and the Kleene filter paths
    # distinguish True from NULL with `is True` — np.True_ is not True.
    if op is ComparisonOp.EQ:
        return bool(left == right)
    if op is ComparisonOp.NE:
        return bool(left != right)
    if op is ComparisonOp.LT:
        return bool(left < right)
    if op is ComparisonOp.LE:
        return bool(left <= right)
    if op is ComparisonOp.GT:
        return bool(left > right)
    if op is ComparisonOp.GE:
        return bool(left >= right)
    raise ExecutionError(f"unknown comparison {op!r}")


def _table_rows(database: Database, block: QueryBlock, table_ref) -> List[Row]:
    table = database.table(table_ref.physical_name)
    columns = block.columns_of(table_ref)
    if not columns:
        # Tables joined purely for cardinality still need a row marker.
        return [dict() for _ in range(table.row_count)]
    arrays = {c: table.column(c.column) for c in columns}
    rows: List[Row] = []
    for i in range(table.row_count):
        rows.append({c: arr[i] for c, arr in arrays.items()})
    return rows


def _join_all(database: Database, block: QueryBlock) -> List[Row]:
    """Join the block's tables in order with applicable conjuncts."""
    pending = list(block.conjuncts)
    current: List[Row] = [dict()]
    joined_tables: List = []
    remaining = list(block.tables)
    while remaining:
        # Prefer a table connected to the current result by an equality.
        chosen = None
        for table_ref in remaining:
            if not joined_tables:
                chosen = table_ref
                break
            for conjunct in pending:
                if (
                    isinstance(conjunct, Comparison)
                    and conjunct.is_column_equality
                ):
                    tables = {c.table_ref for c in conjunct.columns()}
                    if table_ref in tables and tables - {table_ref} <= set(
                        joined_tables
                    ):
                        chosen = table_ref
                        break
            if chosen is not None:
                break
        if chosen is None:
            chosen = remaining[0]
        remaining.remove(chosen)
        new_rows = _table_rows(database, block, chosen)
        # Equality conjuncts usable as hash keys for this join step.
        keys: List[Tuple[ColumnRef, ColumnRef]] = []
        for conjunct in pending:
            if isinstance(conjunct, Comparison) and conjunct.is_column_equality:
                left, right = conjunct.left, conjunct.right
                assert isinstance(left, ColumnRef) and isinstance(right, ColumnRef)
                if left.table_ref == chosen and right.table_ref in joined_tables:
                    keys.append((right, left))
                elif right.table_ref == chosen and left.table_ref in joined_tables:
                    keys.append((left, right))
        if joined_tables and keys:
            index: Dict[tuple, List[Row]] = {}
            for row in new_rows:
                key = tuple(row[new_col] for _, new_col in keys)
                index.setdefault(key, []).append(row)
            merged: List[Row] = []
            for row in current:
                key = tuple(row[old_col] for old_col, _ in keys)
                for match in index.get(key, ()):  # hash join
                    combined = dict(row)
                    combined.update(match)
                    merged.append(combined)
            current = merged
        else:
            current = [
                {**row, **new_row} for row in current for new_row in new_rows
            ]
        joined_tables.append(chosen)
        # Apply every conjunct whose columns are now all available.
        available = set(joined_tables)
        applicable = [
            c for c in pending
            if {col.table_ref for col in c.columns()} <= available
        ]
        for conjunct in applicable:
            pending.remove(conjunct)
            if isinstance(conjunct, Comparison) and conjunct.is_column_equality:
                # Already enforced when used as a join key; re-check anyway.
                pass
            current = [
                row for row in current if _eval_scalar(conjunct, row)
            ]
    if pending:
        raise ExecutionError(f"unapplied conjuncts remain: {pending!r}")
    return current


def _aggregate(block: QueryBlock, rows: List[Row]) -> List[Tuple[Row, Dict[AggExpr, Any]]]:
    return _aggregate_rows(block.group_keys, block.aggregates, rows)


def _aggregate_rows(
    group_keys: Sequence[ColumnRef],
    aggregates: Sequence[AggExpr],
    rows: List[Row],
) -> List[Tuple[Row, Dict[AggExpr, Any]]]:
    groups: Dict[tuple, List[Row]] = {}
    for row in rows:
        key = tuple(row[k] for k in group_keys)
        groups.setdefault(key, []).append(row)
    if not group_keys and not groups:
        groups[()] = []
    output: List[Tuple[Row, Dict[AggExpr, Any]]] = []
    for key, members in groups.items():
        key_row: Row = {
            k: key[i] for i, k in enumerate(group_keys)
        }
        aggs: Dict[AggExpr, Any] = {}
        for agg in aggregates:
            aggs[agg] = _compute_aggregate(agg, members)
        output.append((key_row, aggs))
    return output


def _compute_aggregate(agg: AggExpr, rows: List[Row]) -> Any:
    if agg.func is AggFunc.COUNT:
        return len(rows)
    assert agg.arg is not None
    # NULL inputs (from outer-join null extension) are skipped, per SQL.
    values = [
        v
        for v in (_eval_scalar(agg.arg, row) for row in rows)
        if v is not None
    ]
    if agg.func is AggFunc.SUM:
        return sum(values) if values else 0
    if agg.func is AggFunc.MIN:
        return min(values) if values else None
    if agg.func is AggFunc.MAX:
        return max(values) if values else None
    if agg.func is AggFunc.AVG:
        return sum(values) / len(values) if values else None
    raise ExecutionError(f"unsupported aggregate {agg!r}")


def evaluate_block(
    database: Database,
    block: QueryBlock,
    scalars: Optional[Dict[str, Any]] = None,
) -> List[Tuple[Any, ...]]:
    """Evaluate one block to output rows (before ORDER BY)."""
    joined = _join_all(database, block)
    if block.has_groupby:
        grouped = _aggregate(block, joined)
        results: List[Tuple[Any, ...]] = []
        for key_row, aggs in grouped:
            if block.having and not all(
                _eval_scalar(h, key_row, aggs, scalars) for h in block.having
            ):
                continue
            results.append(
                tuple(
                    _eval_scalar(out.expr, key_row, aggs, scalars)
                    for out in block.output
                )
            )
        return results
    results = []
    for row in joined:
        if block.having and not all(
            _eval_scalar(h, row, None, scalars) for h in block.having
        ):
            continue
        results.append(
            tuple(_eval_scalar(out.expr, row, None, scalars) for out in block.output)
        )
    return results


def _evaluate_extended(
    database: Database,
    query: BoundQuery,
    scalars: Optional[Dict[str, Any]],
) -> List[Tuple[Any, ...]]:
    """Evaluate a query with join extensions: core SPJ rows, then each
    extension join in order (semi/anti filter the core rows; left_outer
    multiplies matches and null-extends misses), then the post-join shape
    under three-valued logic."""
    post = query.post
    assert post is not None
    rows = _join_all(database, query.block)
    for ext in query.extensions:
        inner_rows = _join_all(database, ext.block)
        index: Dict[tuple, List[Row]] = {}
        for inner in inner_rows:
            key = tuple(inner[icol] for _, icol in ext.keys)
            index.setdefault(key, []).append(inner)
        ext_cols = [out.expr for out in ext.block.output]
        combined: List[Row] = []
        for row in rows:
            key = tuple(row[ccol] for ccol, _ in ext.keys)
            matches = index.get(key, ())
            if ext.kind == "semi":
                if matches:
                    combined.append(row)
            elif ext.kind == "anti":
                if not matches:
                    combined.append(row)
            elif ext.kind == "left_outer":
                if matches:
                    for match in matches:
                        merged = dict(row)
                        merged.update({c: match[c] for c in ext_cols})
                        combined.append(merged)
                else:
                    merged = dict(row)
                    merged.update({c: None for c in ext_cols})
                    combined.append(merged)
            else:
                raise ExecutionError(f"unknown extension kind {ext.kind!r}")
        rows = combined
    for predicate in post.filters:
        rows = [
            r
            for r in rows
            if _eval_scalar(predicate, r, None, scalars) is True
        ]
    if post.has_groupby:
        grouped = _aggregate_rows(post.group_keys, post.aggregates, rows)
        results: List[Tuple[Any, ...]] = []
        for key_row, aggs in grouped:
            if post.having and not all(
                _eval_scalar(h, key_row, aggs, scalars) is True
                for h in post.having
            ):
                continue
            results.append(
                tuple(
                    _eval_scalar(out.expr, key_row, aggs, scalars)
                    for out in post.output
                )
            )
        return results
    results = []
    for row in rows:
        if post.having and not all(
            _eval_scalar(h, row, None, scalars) is True for h in post.having
        ):
            continue
        results.append(
            tuple(
                _eval_scalar(out.expr, row, None, scalars)
                for out in post.output
            )
        )
    return results


def evaluate_query(
    database: Database, query: BoundQuery
) -> List[Tuple[Any, ...]]:
    """Evaluate one bound query (subqueries first), ORDER BY applied."""
    scalars: Dict[str, Any] = {}
    for sid, sub_block in query.subqueries.items():
        rows = evaluate_block(database, sub_block)
        if len(rows) != 1 or len(rows[0]) != 1:
            raise ExecutionError(f"subquery {sid!r} is not scalar")
        scalars[sid] = rows[0][0]
    if query.extensions:
        rows = _evaluate_extended(database, query, scalars)
    else:
        rows = evaluate_block(database, query.block, scalars)
    output_shape = query.post.output if query.post else query.block.output
    if query.order_by:
        def column_index(expr) -> int:
            for i, out in enumerate(output_shape):
                if out.expr == expr:
                    return i
            raise ExecutionError(
                f"ORDER BY expression {expr!r} not in output"
            )

        def null_aware_key(index: int):
            # NULL (None or NaN, e.g. from an unmatched outer-join row)
            # compares larger than every value, so it lands last
            # ascending and first descending — the engine's order.
            def key(row: Tuple[Any, ...]):
                value = row[index]
                is_null = value is None or (
                    isinstance(value, float) and value != value
                )
                return (is_null, 0 if is_null else value)

            return key

        # Stable per-key passes, last key first: equivalent to one
        # composite sort but works for non-numeric and NULL values,
        # which a `-value` negation cannot express.
        rows = list(rows)
        for expr, descending in reversed(query.order_by):
            rows.sort(key=null_aware_key(column_index(expr)),
                      reverse=descending)
    return rows


def evaluate_batch(
    database: Database, batch: BoundBatch
) -> Dict[str, List[Tuple[Any, ...]]]:
    """Oracle-evaluate every query of a batch."""
    return {q.name: evaluate_query(database, q) for q in batch.queries}
