"""Vectorized execution of physical plan bundles."""

from .runtime import ExecutionContext, ExecutionMetrics
from .executor import BatchResult, Executor, QueryResult

__all__ = [
    "ExecutionContext",
    "ExecutionMetrics",
    "Executor",
    "BatchResult",
    "QueryResult",
]
