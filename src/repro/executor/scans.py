"""Shared table scans (engine v2).

The paper's spools share *derived* subexpressions; the :class:`ScanManager`
extends the same idea to the leaves of the DAG: within one batch execution,
each (table, needed-columns) group performs exactly one physical scan, and
every consumer aliases the same column arrays. Identical pushed-down
predicate sets additionally share their selection mask and the gathered
(filtered) columns.

In Def 5.1 terms the scan leaf is the best possible spool: ``C_W = 0``
(nothing is copied — consumers alias the arrays) and ``C_R ≈ 0``, so the
saving for ``n`` consumers is ``(n − 1) · C_E``. :class:`ScanStats`
records the evidence (``reads`` vs ``physical_scans``) for EXPLAIN
ANALYZE, the sharing ledger, and Prometheus.

Accounting is split so a single-consumer group charges exactly what the
legacy per-consumer scan charged: a raw fetch charges
``scan(rows, width, 0)`` and a predicate-mask computation charges
``filter(rows, n_conjuncts)`` — which sum to ``scan(rows, width, n)``
under the cost model. Per-key locks guarantee each physical charge
happens exactly once, so merged batch totals are deterministic and
identical in serial and parallel execution.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ExecutionError
from ..expr.evaluator import Frame, evaluate_predicate
from ..expr.expressions import ColumnRef, Expr, TableRef
from ..optimizer.physical import PhysScan
from .runtime import ExecutionContext

#: (physical table, frozenset of column names) — one physical scan each.
RawKey = Tuple[str, frozenset]


def scan_group_key(plan: PhysScan) -> Optional[RawKey]:
    """The (table, needed-columns) sharing group of a scan, or None when
    the scan needs something a shared raw fetch cannot provide."""
    names = set()
    for expr in plan.outputs:
        if not isinstance(expr, ColumnRef):
            return None
        names.add(expr.column)
    for conjunct in plan.conjuncts:
        for col in conjunct.columns():
            names.add(col.column)
    return (plan.table_ref.physical_name, frozenset(names))


def stats_key_for(key: RawKey) -> str:
    """Display/metric key for a scan group: ``table[col1+col2+...]``."""
    physical, names = key
    return f"{physical}[{'+'.join(sorted(names))}]"


class _RawEntry:
    """One fetched (table, columns) group: name → array plus table shape."""

    __slots__ = ("columns", "rows", "width")

    def __init__(self, columns: Dict[str, np.ndarray], rows: int, width: int):
        self.columns = columns
        self.rows = rows
        self.width = width


class _FilteredEntry:
    """One computed predicate mask plus lazily gathered filtered columns."""

    __slots__ = ("mask", "columns")

    def __init__(self, mask: np.ndarray):
        self.mask = mask
        self.columns: Dict[str, np.ndarray] = {}


class ScanManager:
    """Batch-wide scan sharing: exactly one physical fetch per group.

    One instance is shared by every :class:`ExecutionContext` of a batch
    (the same way the ``spools`` dict is shared). All caches use
    double-checked per-key locking, so concurrent consumers of the same
    group block on the fetch instead of duplicating it — the charge for
    the physical work lands in exactly one task's metrics, and the batch
    totals are deterministic."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._locks: Dict[object, threading.Lock] = {}
        self._raw: Dict[RawKey, _RawEntry] = {}
        self._filtered: Dict[Tuple[RawKey, Tuple[str, ...]], _FilteredEntry] = {}

    # -- keys and locks ----------------------------------------------------

    def _key_lock(self, key: object) -> threading.Lock:
        with self._lock:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    @staticmethod
    def _conjunct_key(
        physical: str, conjuncts: Tuple[Expr, ...]
    ) -> Tuple[str, ...]:
        """Alias-independent canonical form of a pushed-down conjunct set.

        Every column reference is rewritten onto one canonical table
        instance, and the conjunct reprs are sorted — so the same
        predicate set over different instances/aliases of a table (and in
        any conjunct order) shares one mask."""
        canon_ref = TableRef(table=physical, instance=0)
        keys = []
        for conjunct in conjuncts:
            mapping: Dict[Expr, Expr] = {
                col: ColumnRef(canon_ref, col.column, col.data_type)
                for col in conjunct.columns()
            }
            keys.append(repr(conjunct.substitute(mapping)))
        return tuple(sorted(keys))

    # -- physical fetch ----------------------------------------------------

    def prewarm(self, physical: str, names: frozenset, ctx: ExecutionContext) -> None:
        """Fetch a group's raw columns ahead of its consumers (used by the
        parallel scheduler's scan tasks)."""
        self._raw_entry((physical, names), ctx)

    def _raw_entry(self, key: RawKey, ctx: ExecutionContext) -> _RawEntry:
        entry = self._raw.get(key)
        if entry is not None:
            return entry
        with self._key_lock(("raw", key)):
            entry = self._raw.get(key)
            if entry is not None:
                return entry
            physical, names = key
            table = ctx.database.table(physical)
            columns = {name: table.column(name) for name in sorted(names)}
            rows = table.row_count
            width = table.row_width()
            charge = ctx.cost_model.scan(rows, width, 0)
            ctx.metrics.rows_scanned += rows
            ctx.metrics.cost_units += charge
            stats = ctx.metrics.scan(stats_key_for(key))
            stats.physical_scans += 1
            stats.rows = max(stats.rows, rows)
            stats.rows_scanned += rows
            stats.cost_units += charge
            entry = _RawEntry(columns, rows, width)
            # Publish only after the charge: a reader that can see the
            # entry knows its physical cost is already accounted for.
            self._raw[key] = entry
            return entry

    # -- consumer resolution ----------------------------------------------

    def scan_frame(self, plan: PhysScan, ctx: ExecutionContext) -> Frame:
        """A consumer-keyed frame for ``plan``, shared physical work."""
        key = scan_group_key(plan)
        if key is None:
            raise ExecutionError(
                f"scan cannot produce {plan.outputs!r}"
            )
        entry = self._raw_entry(key, ctx)
        stats = ctx.metrics.scan(stats_key_for(key))
        stats.reads += 1
        stats.rows = max(stats.rows, entry.rows)
        exprs = set(plan.outputs)
        for conjunct in plan.conjuncts:
            exprs.update(conjunct.columns())
        if not plan.conjuncts:
            return {expr: entry.columns[expr.column] for expr in exprs}
        frame = {expr: entry.columns[expr.column] for expr in exprs}
        filtered = self._filtered_entry(key, plan, frame, entry, ctx, stats)
        out: Frame = {}
        for expr in exprs:
            column = filtered.columns.get(expr.column)
            if column is None:
                # Benign race: concurrent consumers may gather the same
                # column twice; setdefault keeps one winner. Gathers are
                # not charged, so duplicates do not skew totals.
                column = filtered.columns.setdefault(
                    expr.column, entry.columns[expr.column][filtered.mask]
                )
            out[expr] = column
        return out

    def _filtered_entry(
        self,
        key: RawKey,
        plan: PhysScan,
        frame: Frame,
        raw: _RawEntry,
        ctx: ExecutionContext,
        stats,
    ) -> _FilteredEntry:
        canon = self._conjunct_key(key[0], plan.conjuncts)
        fkey = (key, canon)
        entry = self._filtered.get(fkey)
        if entry is not None:
            return entry
        with self._key_lock(("mask", fkey)):
            entry = self._filtered.get(fkey)
            if entry is not None:
                return entry
            mask = np.ones(raw.rows, dtype=bool)
            for conjunct in plan.conjuncts:
                mask &= evaluate_predicate(conjunct, frame)
            charge = ctx.cost_model.filter(raw.rows, len(plan.conjuncts))
            ctx.metrics.cost_units += charge
            stats.cost_units += charge
            entry = _FilteredEntry(mask)
            self._filtered[fkey] = entry
            return entry
