"""Conservative bag-semantics equivalence checking (the proof gate for
sharing over outer/semi/anti joins)."""

from .checker import (
    GAVE_UP,
    PROVED,
    REFUTED,
    Verdict,
    blocks_equivalent,
    check_consumer_match,
    null_rejecting,
    outer_join_reducible,
)

__all__ = [
    "GAVE_UP",
    "PROVED",
    "REFUTED",
    "Verdict",
    "blocks_equivalent",
    "check_consumer_match",
    "null_rejecting",
    "outer_join_reducible",
]
