"""Conservative bag-semantics equivalence checking.

The sharing machinery admits rewrites over the widened SQL surface (outer,
semi, and anti joins) only when this module *proves* them sound under bag
semantics. The checker is the cheap symbolic filter in the
cheap-filter-then-verify pipeline (arXiv 2004.00481, GEqO): syntactic
normalization over slot assignments, mutual predicate implication via
``expr/predicates``, and null-rejection reasoning over an abstract
three-valued evaluation. The 200-seed differential harness remains the
execution-level verdict.

Every query is ``refuted`` only on structural certainties (different table
multisets, different aggregation shape); anything the reasoning cannot
settle is ``gave_up`` — and a non-``proved`` verdict always falls back to
exact-match sharing, never to an ambitious rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..expr.expressions import (
    AggExpr,
    And,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Not,
    Or,
    TableRef,
)
from ..expr.predicates import (
    EquivalenceClasses,
    conjuncts_imply,
    implied_by_equalities,
    range_implies,
)
from ..logical.blocks import QueryBlock

PROVED = "proved"
REFUTED = "refuted"
GAVE_UP = "gave_up"


@dataclass(frozen=True)
class Verdict:
    """Outcome of one equivalence/containment proof attempt."""

    outcome: str  # proved | refuted | gave_up
    reason: str

    @property
    def proved(self) -> bool:
        return self.outcome == PROVED

    def __repr__(self) -> str:
        return f"{self.outcome}: {self.reason}"


# ---------------------------------------------------------------------------
# Null-rejection reasoning (abstract three-valued evaluation)
# ---------------------------------------------------------------------------

_ALL = frozenset({"T", "F", "N"})


def _abstract_truth(
    expr: Expr, null_tables: AbstractSet[TableRef]
) -> FrozenSet[str]:
    """Possible Kleene truth values of ``expr`` on a row where every column
    of ``null_tables`` is NULL and every other column is arbitrary
    (non-NULL). Conservative: unknown expression forms yield all three."""
    if isinstance(expr, Literal):
        if expr.value is True:
            return frozenset({"T"})
        if expr.value is False:
            return frozenset({"F"})
        return _ALL
    if isinstance(expr, Comparison):
        # A comparison whose either operand involves a NULL column is NULL;
        # otherwise it may be TRUE or FALSE.
        if any(c.table_ref in null_tables for c in expr.columns()):
            return frozenset({"N"})
        return frozenset({"T", "F"})
    if isinstance(expr, Not):
        inner = _abstract_truth(expr.term, null_tables)
        flipped = {"N" if v == "N" else ("F" if v == "T" else "T") for v in inner}
        return frozenset(flipped)
    if isinstance(expr, And):
        possible = frozenset({"T"})
        for term in expr.terms:
            term_vals = _abstract_truth(term, null_tables)
            possible = frozenset(
                _and3(a, b) for a in possible for b in term_vals
            )
        return possible
    if isinstance(expr, Or):
        possible = frozenset({"F"})
        for term in expr.terms:
            term_vals = _abstract_truth(term, null_tables)
            possible = frozenset(
                _or3(a, b) for a in possible for b in term_vals
            )
        return possible
    return _ALL


def _and3(a: str, b: str) -> str:
    if a == "F" or b == "F":
        return "F"
    if a == "N" or b == "N":
        return "N"
    return "T"


def _or3(a: str, b: str) -> str:
    if a == "T" or b == "T":
        return "T"
    if a == "N" or b == "N":
        return "N"
    return "F"


def null_rejecting(predicate: Expr, tables: AbstractSet[TableRef]) -> bool:
    """Whether ``predicate`` can never be TRUE on a row whose columns from
    ``tables`` are all NULL (so it rejects null-extended rows). Proved
    symbolically; False means "could not prove", not "accepts NULLs"."""
    if not any(c.table_ref in tables for c in predicate.columns()):
        return False
    return "T" not in _abstract_truth(predicate, tables)


def outer_join_reducible(
    ext_tables: AbstractSet[TableRef], filters: Sequence[Expr]
) -> Verdict:
    """Whether a LEFT OUTER extension is provably reducible to an inner
    join: some post-join filter must reject every null-extended row
    (the classical null-rejection simplification)."""
    for predicate in filters:
        touches = any(c.table_ref in ext_tables for c in predicate.columns())
        if touches and null_rejecting(predicate, ext_tables):
            return Verdict(
                PROVED,
                f"filter {predicate!r} is null-rejecting on the outer side",
            )
    if not filters:
        return Verdict(GAVE_UP, "no post-join filter constrains the outer side")
    return Verdict(GAVE_UP, "no post-join filter proved null-rejecting")


# ---------------------------------------------------------------------------
# Block-level bag equivalence
# ---------------------------------------------------------------------------


def _slot_map(
    a: QueryBlock, b: QueryBlock
) -> Optional[Dict[TableRef, TableRef]]:
    """Map b's table instances onto a's via the shared slot assignment, or
    None when the table multisets differ."""
    from ..cse.compatibility import slot_assignment

    slots_a = slot_assignment(a.tables)
    slots_b = slot_assignment(b.tables)
    by_slot = {slot: tref for tref, slot in slots_a.items()}
    if set(by_slot) != set(slots_b.values()):
        return None
    return {tref: by_slot[slot] for tref, slot in slots_b.items()}


def _remap(expr: Expr, table_map: Dict[TableRef, TableRef]) -> Expr:
    mapping: Dict[Expr, Expr] = {}
    for col in expr.columns():
        target = table_map.get(col.table_ref)
        if target is not None:
            mapping[col] = ColumnRef(target, col.column, col.data_type)
    return expr.substitute(mapping)


def blocks_equivalent(a: QueryBlock, b: QueryBlock) -> Verdict:
    """Conservative bag-semantics equivalence of two SPJ(G) blocks.

    ``proved`` requires: identical table multisets (up to instance renaming
    along slot assignment), mutually implying predicate conjunct sets, and
    identical grouping keys, aggregates, and outputs after renaming.
    """
    table_map = _slot_map(a, b)
    if table_map is None:
        return Verdict(REFUTED, "different table multisets")

    b_conjuncts = [_remap(c, table_map) for c in b.conjuncts]
    a_conjuncts = list(a.conjuncts)
    classes_a = EquivalenceClasses.from_conjuncts(a_conjuncts)
    classes_b = EquivalenceClasses.from_conjuncts(b_conjuncts)
    if not conjuncts_imply(a_conjuncts, b_conjuncts, classes_a):
        return Verdict(GAVE_UP, "left predicate does not provably imply right")
    if not conjuncts_imply(b_conjuncts, a_conjuncts, classes_b):
        return Verdict(GAVE_UP, "right predicate does not provably imply left")

    if a.has_groupby != b.has_groupby:
        return Verdict(REFUTED, "one side aggregates, the other does not")
    if a.has_groupby:
        keys_b = {_remap(k, table_map) for k in b.group_keys}
        if set(a.group_keys) != keys_b:
            return Verdict(REFUTED, "different grouping keys")
        aggs_b = {_remap(agg, table_map) for agg in b.aggregates}
        if set(a.aggregates) != aggs_b:
            return Verdict(REFUTED, "different aggregate sets")

    if len(a.output) != len(b.output):
        return Verdict(REFUTED, "different output arity")
    for out_a, out_b in zip(a.output, b.output):
        if out_a.expr != _remap(out_b.expr, table_map):
            return Verdict(GAVE_UP, f"output {out_a.name} differs")
    return Verdict(PROVED, "table multiset, predicate, shape all match")


# ---------------------------------------------------------------------------
# Consumer-match containment obligations
# ---------------------------------------------------------------------------


def check_consumer_match(definition, group, info) -> Verdict:
    """Independently re-derive the §5.1 view-matching obligations for one
    consumer group against a CSE definition, under bag semantics.

    Every obligation the matcher relies on is re-proved here: slot-set
    equality, joint-equality implication, covering-predicate containment,
    residual-column availability, and (for aggregated CSEs) grouping
    containment. The substitution is row-for-row, so bag semantics is
    preserved exactly when containment holds — duplicate-sensitive
    consumers (semi/anti build sides) are safe because deduplication
    happens in the consuming join operator, not the spool.
    """
    from ..cse.compatibility import slot_assignment
    from ..cse.construct import consumer_conjuncts, consumer_table_map, remap_expr

    if group.signature != definition.signature:
        return Verdict(REFUTED, "table signature mismatch")
    body_by_slot = {
        slot: tref
        for tref, slot in slot_assignment(definition.block.tables).items()
    }
    consumer_slots = set(slot_assignment(group.tables).values())
    if consumer_slots != set(body_by_slot):
        return Verdict(REFUTED, "slot multiset mismatch")
    table_map = consumer_table_map(group, body_by_slot)
    mapped = [remap_expr(c, table_map) for c in consumer_conjuncts(group, info)]
    classes = EquivalenceClasses.from_conjuncts(mapped)

    for equality in definition.joint_equalities:
        if not implied_by_equalities(equality, classes):
            return Verdict(
                GAVE_UP, f"joint equality {equality!r} not implied by consumer"
            )
    for covering in definition.covering_conjuncts:
        if not any(
            have == covering or range_implies(have, covering) for have in mapped
        ):
            return Verdict(
                GAVE_UP, f"covering conjunct {covering!r} not implied by consumer"
            )

    available = {
        o.expr for o in definition.outputs if isinstance(o.expr, ColumnRef)
    }
    for conjunct in mapped:
        if implied_by_equalities(conjunct, definition.joint_classes):
            continue
        if any(
            guaranteed == conjunct or range_implies(guaranteed, conjunct)
            for guaranteed in definition.covering_conjuncts
        ):
            continue
        if not conjunct.columns() <= available:
            return Verdict(
                GAVE_UP, f"residual {conjunct!r} references unavailable columns"
            )

    if definition.has_groupby:
        mapped_keys = set()
        for key in group.agg_keys:
            mapped_key = remap_expr(key, table_map)
            if not isinstance(mapped_key, ColumnRef):
                return Verdict(GAVE_UP, "consumer grouping key is not a column")
            mapped_keys.add(mapped_key)
        if not mapped_keys <= set(definition.group_keys):
            return Verdict(GAVE_UP, "consumer keys not contained in CSE keys")
        for out in group.agg_outs:
            if not isinstance(out, AggExpr):
                return Verdict(GAVE_UP, f"non-aggregate output {out!r}")
            if remap_expr(out, table_map) not in set(definition.aggregates):
                return Verdict(
                    GAVE_UP, f"aggregate {out!r} not computed by the CSE"
                )
    else:
        for expr in group.required_outputs:
            if not remap_expr(expr, table_map).columns() <= available:
                return Verdict(
                    GAVE_UP, f"required output {expr!r} not in CSE output"
                )
    return Verdict(PROVED, "containment obligations all proved")
