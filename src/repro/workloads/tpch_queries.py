"""Adapted TPC-H queries.

The classic TPC-H read-only queries, adapted to this engine's SQL subset
(inner equijoins, SPJG, scalar subqueries; no LIKE/EXISTS/outer joins) and
to the generator's schema (see ``repro.catalog.tpch``). They serve as a
realistic optimizer/executor workload beyond the paper's experiments, and
several pairs share subexpressions when run as batches.
"""

from __future__ import annotations

from typing import Dict, List

#: Q1 — pricing summary report (lineitem scan + wide aggregation).
TPCH_Q1 = """
select l_returnflag,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= '1998-09-02'
group by l_returnflag
order by l_returnflag
"""

#: Q3 — shipping priority (3-way join, selective segment filter).
TPCH_Q3 = """
select o_orderpriority,
       sum(l_extendedprice) as revenue
from customer, orders, lineitem
where c_mktsegment = 'BUILDING'
  and c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate < '1995-03-15'
group by o_orderpriority
order by revenue desc
"""

#: Q5 — local supplier volume (6-way join through nation/region).
TPCH_Q5 = """
select n_name, sum(l_extendedprice) as revenue
from customer, orders, lineitem, supplier, nation, region
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey
  and c_nationkey = s_nationkey
  and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = 'ASIA'
  and o_orderdate >= '1994-01-01' and o_orderdate < '1995-01-01'
group by n_name
order by revenue desc
"""

#: Q6 — forecasting revenue change (scalar aggregate, range filters).
TPCH_Q6 = """
select sum(l_extendedprice) as revenue
from lineitem
where l_shipdate >= '1994-01-01' and l_shipdate < '1995-01-01'
  and l_discount between 0.05 and 0.07
  and l_quantity < 24
"""

#: Q10 — returned item reporting (grouped by nation instead of customer).
TPCH_Q10 = """
select n_name, sum(l_extendedprice) as revenue
from customer, orders, lineitem, nation
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate >= '1993-10-01' and o_orderdate < '1994-01-01'
  and l_returnflag = 'R'
  and c_nationkey = n_nationkey
group by n_name
order by revenue desc
"""

#: Q12 — shipping modes adapted to order priorities (2-way join).
TPCH_Q12 = """
select o_orderpriority, count(*) as line_count
from orders, lineitem
where o_orderkey = l_orderkey
  and l_shipdate >= '1994-01-01' and l_shipdate < '1995-01-01'
group by o_orderpriority
order by o_orderpriority
"""

#: Q14 — promotion effect adapted (part ⋈ lineitem, grouped by size band).
TPCH_Q14 = """
select p_size, sum(l_extendedprice) as revenue
from lineitem, part
where l_partkey = p_partkey
  and l_shipdate >= '1995-09-01' and l_shipdate < '1995-10-01'
group by p_size
"""

#: Q19 — discounted revenue (disjunctive predicates).
TPCH_Q19 = """
select sum(l_extendedprice) as revenue
from lineitem, part
where p_partkey = l_partkey
  and ((p_size between 1 and 5 and l_quantity between 1 and 11)
    or (p_size between 6 and 15 and l_quantity between 10 and 20))
"""

#: Q11-like nested query — see repro.workloads.example1.NESTED_QUERY_SQL.

ADAPTED_QUERIES: Dict[str, str] = {
    "Q1": TPCH_Q1.strip(),
    "Q3": TPCH_Q3.strip(),
    "Q5": TPCH_Q5.strip(),
    "Q6": TPCH_Q6.strip(),
    "Q10": TPCH_Q10.strip(),
    "Q12": TPCH_Q12.strip(),
    "Q14": TPCH_Q14.strip(),
    "Q19": TPCH_Q19.strip(),
}


def adapted_query(name: str) -> str:
    """One adapted TPC-H query by its classic number (e.g. ``"Q5"``)."""
    return ADAPTED_QUERIES[name]


def adapted_batch(*names: str) -> str:
    """A batch of adapted queries (default: all of them)."""
    selected: List[str] = list(names) if names else list(ADAPTED_QUERIES)
    return ";\n".join(ADAPTED_QUERIES[name] for name in selected)


#: Pairs that share subexpressions when batched (used by tests/benches).
SHARING_PAIRS = [
    ("Q3", "Q10"),   # both join customer ⋈ orders ⋈ lineitem
    ("Q14", "Q19"),  # both join lineitem ⋈ part
    ("Q12", "Q3"),   # orders ⋈ lineitem inside both
]
