"""The paper's concrete workloads.

* Example 1 (§1): a batch of three TPC-H summary queries (Q1-Q3) — the
  Table 1 / Figure 6 experiment.
* Q4 (§6.2): the fourth query joining ``part``, turning the optimal answer
  into stacked CSEs — the Table 2 experiment.
* The nested query of §6.3 (TPC-H Q11-like) — the Table 3 / Figure 7
  experiment.

The SQL matches the paper's text up to its obvious typos (the paper's
``n.regionkey``/``c_nationkey`` mix-ups in Example 1 are resolved the way
its own E5 rewrite resolves them: Q1/Q2 filter and group on
``c_nationkey``, Q3 joins ``nation`` and groups on ``n_regionkey``).
"""

from __future__ import annotations

from typing import List

Q1_SQL = """
select c_nationkey, c_mktsegment,
       sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01'
  and c_nationkey > 0 and c_nationkey < 20
group by c_nationkey, c_mktsegment
"""

Q2_SQL = """
select c_nationkey,
       sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01'
  and c_nationkey > 5 and c_nationkey < 25
group by c_nationkey
"""

Q3_SQL = """
select n_regionkey,
       sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and c_nationkey = n_nationkey
  and o_orderdate < '1996-07-01'
  and c_nationkey > 2 and c_nationkey < 24
group by n_regionkey
"""

#: §6.2's additional query. The paper selects ``p_availqty`` from ``part``;
#: our TPC-H generator includes that column (see repro.catalog.tpch).
Q4_SQL = """
select p_type, sum(p_availqty) as qty
from part, orders, lineitem
where p_partkey = l_partkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01'
group by p_type
"""

EXAMPLE1_QUERIES: List[str] = [Q1_SQL, Q2_SQL, Q3_SQL]

EXAMPLE1_BATCH_SQL = ";\n".join(q.strip() for q in EXAMPLE1_QUERIES)

#: §6.3's nested query (TPC-H Q11-like): the main block and the scalar
#: subquery both join customer ⋈ orders ⋈ lineitem.
NESTED_QUERY_SQL = """
select c_nationkey, n_name, sum(l_discount) as totaldisc
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and c_nationkey = n_nationkey
group by c_nationkey, n_name
having sum(l_discount) > (
    select sum(l_discount) / 25
    from customer, orders, lineitem
    where c_custkey = o_custkey and o_orderkey = l_orderkey
)
order by totaldisc desc
"""


def example1_batch() -> str:
    """The Table 1 batch (Q1, Q2, Q3)."""
    return EXAMPLE1_BATCH_SQL


def example1_with_q4() -> str:
    """The Table 2 batch (Q1, Q2, Q3, Q4)."""
    return ";\n".join(q.strip() for q in EXAMPLE1_QUERIES + [Q4_SQL])


def nested_query() -> str:
    """The Table 3 nested query."""
    return NESTED_QUERY_SQL.strip()
