"""Workloads: the paper's experiment queries and generators."""

from .example1 import (
    EXAMPLE1_BATCH_SQL,
    EXAMPLE1_QUERIES,
    Q4_SQL,
    NESTED_QUERY_SQL,
    example1_batch,
    example1_with_q4,
    nested_query,
)
from .generator import (
    complex_join_batch,
    independent_pairs_batch,
    random_spjg_batch,
    random_spjg_query,
    scaleup_batch,
)
from .tpch_queries import ADAPTED_QUERIES, SHARING_PAIRS, adapted_batch, adapted_query

__all__ = [
    "EXAMPLE1_BATCH_SQL",
    "EXAMPLE1_QUERIES",
    "Q4_SQL",
    "NESTED_QUERY_SQL",
    "example1_batch",
    "example1_with_q4",
    "nested_query",
    "complex_join_batch",
    "independent_pairs_batch",
    "random_spjg_batch",
    "random_spjg_query",
    "scaleup_batch",
    "ADAPTED_QUERIES",
    "SHARING_PAIRS",
    "adapted_batch",
    "adapted_query",
]
