"""Parameterized workload generators for the scale-up experiments (§6.5).

* :func:`scaleup_batch` — batches of 2..N queries, each joining
  customer ⋈ orders ⋈ lineitem with per-query local predicates and grouping
  columns, optionally joining ``nation``/``region`` (Figure 8).
* :func:`complex_join_batch` — two queries joining all eight TPC-H tables
  with different local predicates, aggregating by region (Table 4).
"""

from __future__ import annotations

import random
from typing import List

_GROUPINGS = [
    "c_nationkey",
    "c_mktsegment",
    "c_nationkey, c_mktsegment",
    "o_orderpriority",
    "o_orderstatus",
]

#: groupings that require joining nation (and region) as well.
_EXTENDED_GROUPINGS = [
    ("n_regionkey", "nation", "c_nationkey = n_nationkey"),
    (
        "r_name",
        "nation, region",
        "c_nationkey = n_nationkey and n_regionkey = r_regionkey",
    ),
]


def scaleup_batch(query_count: int, seed: int = 7) -> str:
    """A batch of ``query_count`` similar queries over C ⋈ O ⋈ L.

    Mirrors §6.5: each query joins lineitem, orders, and customer, with
    different local predicates and grouping columns; some also join nation
    and region. Deterministic for a given seed.
    """
    if query_count < 1:
        raise ValueError("query_count must be positive")
    rng = random.Random(seed)
    queries: List[str] = []
    for index in range(query_count):
        date_cut = f"199{rng.randint(3, 7)}-0{rng.randint(1, 6)}-01"
        low = rng.randint(0, 6)
        high = rng.randint(18, 25)
        if index % 3 == 2:
            grouping, extra_tables, extra_join = _EXTENDED_GROUPINGS[
                rng.randrange(len(_EXTENDED_GROUPINGS))
            ]
            queries.append(
                f"select {grouping}, sum(l_extendedprice) as le, "
                f"sum(l_quantity) as lq\n"
                f"from customer, orders, lineitem, {extra_tables}\n"
                f"where c_custkey = o_custkey and o_orderkey = l_orderkey\n"
                f"  and {extra_join}\n"
                f"  and o_orderdate < '{date_cut}'\n"
                f"  and c_nationkey > {low} and c_nationkey < {high}\n"
                f"group by {grouping}"
            )
        else:
            grouping = _GROUPINGS[rng.randrange(len(_GROUPINGS))]
            queries.append(
                f"select {grouping}, sum(l_extendedprice) as le, "
                f"sum(l_quantity) as lq\n"
                f"from customer, orders, lineitem\n"
                f"where c_custkey = o_custkey and o_orderkey = l_orderkey\n"
                f"  and o_orderdate < '{date_cut}'\n"
                f"  and c_nationkey > {low} and c_nationkey < {high}\n"
                f"group by {grouping}"
            )
    return ";\n".join(queries)


_EIGHT_TABLE_TEMPLATE = """
select r_name, sum(l_extendedprice) as revenue, sum(ps_supplycost) as cost
from region, nation, customer, orders, lineitem, supplier, partsupp, part
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and c_nationkey = n_nationkey and n_regionkey = r_regionkey
  and l_suppkey = s_suppkey
  and l_partkey = ps_partkey and s_suppkey = ps_suppkey
  and ps_partkey = p_partkey
  and o_orderdate < '{date_cut}'
  and c_nationkey > {low} and c_nationkey < {high}
  and p_size < {size}
group by r_name
""".strip()


def complex_join_batch(seed: int = 11) -> str:
    """Two queries joining all eight TPC-H tables, aggregated by region,
    with different local predicates (Table 4)."""
    rng = random.Random(seed)
    first = _EIGHT_TABLE_TEMPLATE.format(
        date_cut="1996-07-01",
        low=rng.randint(0, 3),
        high=rng.randint(20, 25),
        size=rng.randint(25, 40),
    )
    second = _EIGHT_TABLE_TEMPLATE.format(
        date_cut="1995-03-15",
        low=rng.randint(2, 6),
        high=rng.randint(18, 23),
        size=rng.randint(30, 50),
    )
    return first + ";\n" + second
