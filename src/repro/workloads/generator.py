"""Parameterized workload generators for the scale-up experiments (§6.5).

* :func:`scaleup_batch` — batches of 2..N queries, each joining
  customer ⋈ orders ⋈ lineitem with per-query local predicates and grouping
  columns, optionally joining ``nation``/``region`` (Figure 8).
* :func:`complex_join_batch` — two queries joining all eight TPC-H tables
  with different local predicates, aggregating by region (Table 4).
* :func:`random_spjg_batch` — seed-determined small SPJG batches for the
  property-based suites: queries share join chains (so candidate CSEs are
  frequent) but vary predicates, groupings, and aggregates.
* :func:`random_sql_batch` — seed-determined batches over the *widened*
  surface: outer joins, EXISTS/IN subquery predicates, NULL-heavy
  projections, mixed with plain SPJG queries.
* :func:`independent_pairs_batch` — six queries in three independent
  shared-subexpression pairs, built for the parallel serving benchmark.
"""

from __future__ import annotations

import random
from typing import List, Optional

_GROUPINGS = [
    "c_nationkey",
    "c_mktsegment",
    "c_nationkey, c_mktsegment",
    "o_orderpriority",
    "o_orderstatus",
]

#: groupings that require joining nation (and region) as well.
_EXTENDED_GROUPINGS = [
    ("n_regionkey", "nation", "c_nationkey = n_nationkey"),
    (
        "r_name",
        "nation, region",
        "c_nationkey = n_nationkey and n_regionkey = r_regionkey",
    ),
]


def scaleup_batch(query_count: int, seed: int = 7) -> str:
    """A batch of ``query_count`` similar queries over C ⋈ O ⋈ L.

    Mirrors §6.5: each query joins lineitem, orders, and customer, with
    different local predicates and grouping columns; some also join nation
    and region. Deterministic for a given seed.
    """
    if query_count < 1:
        raise ValueError("query_count must be positive")
    rng = random.Random(seed)
    queries: List[str] = []
    for index in range(query_count):
        date_cut = f"199{rng.randint(3, 7)}-0{rng.randint(1, 6)}-01"
        low = rng.randint(0, 6)
        high = rng.randint(18, 25)
        if index % 3 == 2:
            grouping, extra_tables, extra_join = _EXTENDED_GROUPINGS[
                rng.randrange(len(_EXTENDED_GROUPINGS))
            ]
            queries.append(
                f"select {grouping}, sum(l_extendedprice) as le, "
                f"sum(l_quantity) as lq\n"
                f"from customer, orders, lineitem, {extra_tables}\n"
                f"where c_custkey = o_custkey and o_orderkey = l_orderkey\n"
                f"  and {extra_join}\n"
                f"  and o_orderdate < '{date_cut}'\n"
                f"  and c_nationkey > {low} and c_nationkey < {high}\n"
                f"group by {grouping}"
            )
        else:
            grouping = _GROUPINGS[rng.randrange(len(_GROUPINGS))]
            queries.append(
                f"select {grouping}, sum(l_extendedprice) as le, "
                f"sum(l_quantity) as lq\n"
                f"from customer, orders, lineitem\n"
                f"where c_custkey = o_custkey and o_orderkey = l_orderkey\n"
                f"  and o_orderdate < '{date_cut}'\n"
                f"  and c_nationkey > {low} and c_nationkey < {high}\n"
                f"group by {grouping}"
            )
    return ";\n".join(queries)


_EIGHT_TABLE_TEMPLATE = """
select r_name, sum(l_extendedprice) as revenue, sum(ps_supplycost) as cost
from region, nation, customer, orders, lineitem, supplier, partsupp, part
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and c_nationkey = n_nationkey and n_regionkey = r_regionkey
  and l_suppkey = s_suppkey
  and l_partkey = ps_partkey and s_suppkey = ps_suppkey
  and ps_partkey = p_partkey
  and o_orderdate < '{date_cut}'
  and c_nationkey > {low} and c_nationkey < {high}
  and p_size < {size}
group by r_name
""".strip()


#: join chains for random SPJG queries: (tables, join predicates).
_SPJG_CHAINS = [
    (
        ["customer", "orders", "lineitem"],
        ["c_custkey = o_custkey", "o_orderkey = l_orderkey"],
    ),
    (
        ["nation", "customer", "orders"],
        ["n_nationkey = c_nationkey", "c_custkey = o_custkey"],
    ),
    (
        ["orders", "lineitem", "part"],
        ["o_orderkey = l_orderkey", "l_partkey = p_partkey"],
    ),
]

#: (column, low domain, high domain) for random range predicates.
_SPJG_RANGES = {
    "customer": ("c_nationkey", 0, 25),
    "orders": ("o_totalprice", 1000, 400000),
    "lineitem": ("l_quantity", 1, 50),
    "nation": ("n_regionkey", 0, 5),
    "part": ("p_size", 1, 50),
}

_SPJG_GROUPINGS = {
    "customer": ["c_nationkey", "c_mktsegment"],
    "orders": ["o_orderstatus", "o_orderpriority"],
    "lineitem": ["l_returnflag"],
    "nation": ["n_regionkey"],
    "part": ["p_size"],
}

_SPJG_AGGREGATES = {
    "customer": "c_acctbal",
    "orders": "o_totalprice",
    "lineitem": "l_extendedprice",
    "nation": "n_nationkey",
    "part": "p_retailprice",
}


def random_spjg_query(rng: random.Random) -> str:
    """One random select-project-join-group-by query."""
    tables, joins = _SPJG_CHAINS[rng.randrange(len(_SPJG_CHAINS))]
    length = rng.randint(2, len(tables))
    used = tables[:length]
    conjuncts = list(joins[: length - 1])
    for table in used:
        if rng.random() < 0.5:
            column, low, high = _SPJG_RANGES[table]
            bound = rng.randint(low, high)
            op = rng.choice(["<", ">", "<=", ">="])
            conjuncts.append(f"{column} {op} {bound}")
    group_col = rng.choice(_SPJG_GROUPINGS[rng.choice(used)])
    agg_col = _SPJG_AGGREGATES[rng.choice(used)]
    agg = rng.choice(["sum", "min", "max", "count"])
    agg_sql = f"{agg}({agg_col})" if agg != "count" else "count(*)"
    return (
        f"select {group_col}, {agg_sql} as v from {', '.join(used)} "
        f"where {' and '.join(conjuncts)} group by {group_col}"
    )


def random_spjg_batch(seed: int, query_count: Optional[int] = None) -> str:
    """A seed-determined batch of 2-3 random SPJG queries.

    Queries draw from a small pool of join chains, so batches regularly
    contain similar subexpressions — the interesting case for the
    observability and correctness property suites."""
    rng = random.Random(seed)
    if query_count is None:
        query_count = rng.randint(2, 3)
    return ";\n".join(random_spjg_query(rng) for _ in range(query_count))


# -- widened-surface random batches (outer / semi / anti joins) -------------

#: LEFT JOIN shapes: (core table, ext table, ON equijoin key, ext-side
#: filter (column, low, high), null-rejecting ext column for reduction
#: variants, ext-side aggregate column, core grouping columns).
_LEFT_SHAPES = [
    (
        "customer",
        "orders",
        "c_custkey = o_custkey",
        ("o_totalprice", 1000, 400000),
        "o_totalprice",
        "o_totalprice",
        ["c_nationkey", "c_mktsegment"],
    ),
    (
        "orders",
        "lineitem",
        "o_orderkey = l_orderkey",
        ("l_quantity", 1, 50),
        "l_quantity",
        "l_extendedprice",
        ["o_orderstatus", "o_orderpriority"],
    ),
    (
        "part",
        "lineitem",
        "p_partkey = l_partkey",
        ("l_quantity", 1, 50),
        "l_extendedprice",
        "l_quantity",
        ["p_size"],
    ),
]

#: EXISTS/IN shapes: (outer table, inner tables, correlation conjunct,
#: inner join conjuncts, inner filter (column, low, high), IN membership
#: pair (subject column, inner column) or None, core grouping columns).
_SUBQUERY_SHAPES = [
    (
        "customer",
        ["orders", "lineitem"],
        "o_custkey = c_custkey",
        ["o_orderkey = l_orderkey"],
        ("l_quantity", 1, 50),
        None,
        ["c_nationkey", "c_mktsegment"],
    ),
    (
        "customer",
        ["orders"],
        "o_custkey = c_custkey",
        [],
        ("o_totalprice", 1000, 400000),
        ("c_custkey", "o_custkey"),
        ["c_nationkey", "c_mktsegment"],
    ),
    (
        "orders",
        ["lineitem"],
        "l_orderkey = o_orderkey",
        [],
        ("l_quantity", 1, 50),
        ("o_orderkey", "l_orderkey"),
        ["o_orderstatus", "o_orderpriority"],
    ),
]


def _random_left_join_query(rng: random.Random) -> str:
    """One random LEFT (or reducible-to-inner) OUTER JOIN query."""
    core, ext, key, on_filter, nr_col, agg_col, groupings = _LEFT_SHAPES[
        rng.randrange(len(_LEFT_SHAPES))
    ]
    on = key
    if rng.random() < 0.5:
        column, low, high = on_filter
        on += f" and {column} {rng.choice(['<', '>', '<=', '>='])} " \
              f"{rng.randint(low, high)}"
    where: List[str] = []
    if rng.random() < 0.5:
        column, low, high = _SPJG_RANGES[core]
        where.append(
            f"{column} {rng.choice(['<', '>', '<=', '>='])} "
            f"{rng.randint(low, high)}"
        )
    if rng.random() < 0.4:
        # Null-rejecting filter on the null-extended side: the simplifier
        # proves the outer join reducible, so this variant shares inner-join
        # spools with plain SPJG queries.
        where.append(f"{nr_col} > 0")
    where_sql = f" where {' and '.join(where)}" if where else ""
    if rng.random() < 0.6:
        group_col = rng.choice(groupings)
        agg = rng.choice(["sum", "min", "max", "count"])
        agg_sql = f"{agg}({agg_col})" if agg != "count" else "count(*)"
        return (
            f"select {group_col}, {agg_sql} as v from {core} "
            f"left join {ext} on {on}{where_sql} group by {group_col}"
        )
    # NULL-heavy projection: null-extended columns flow to the output.
    out_cols = f"{rng.choice(groupings)}, {agg_col}"
    return (
        f"select {out_cols} from {core} left join {ext} on {on}{where_sql}"
    )


def _random_subquery_query(rng: random.Random) -> str:
    """One random EXISTS / NOT EXISTS / IN / NOT IN query."""
    shape = _SUBQUERY_SHAPES[rng.randrange(len(_SUBQUERY_SHAPES))]
    outer, inners, corr, joins, inner_filter, in_pair, groupings = shape
    inner_where = [corr] + list(joins)
    if rng.random() < 0.6:
        column, low, high = inner_filter
        inner_where.append(
            f"{column} {rng.choice(['<', '>', '<=', '>='])} "
            f"{rng.randint(low, high)}"
        )
    if in_pair is not None and rng.random() < 0.5:
        subject, member = in_pair
        column, low, high = inner_filter
        op = "not in" if rng.random() < 0.3 else "in"
        filter_sql = ""
        if rng.random() < 0.7:
            filter_sql = (
                f" where {column} {rng.choice(['<', '>'])} "
                f"{rng.randint(low, high)}"
            )
        sub = (
            f"{subject} {op} "
            f"(select {member} from {', '.join(inners)}{filter_sql})"
        )
    else:
        prefix = "not exists" if rng.random() < 0.3 else "exists"
        sub = (
            f"{prefix} (select * from {', '.join(inners)} "
            f"where {' and '.join(inner_where)})"
        )
    where = [sub]
    if rng.random() < 0.5:
        column, low, high = _SPJG_RANGES[outer]
        where.append(
            f"{column} {rng.choice(['<', '>', '<=', '>='])} "
            f"{rng.randint(low, high)}"
        )
    if rng.random() < 0.6:
        group_col = rng.choice(groupings)
        agg_col = _SPJG_AGGREGATES[outer]
        agg = rng.choice(["sum", "min", "max", "count"])
        agg_sql = f"{agg}({agg_col})" if agg != "count" else "count(*)"
        return (
            f"select {group_col}, {agg_sql} as v from {outer} "
            f"where {' and '.join(where)} group by {group_col}"
        )
    return (
        f"select {rng.choice(groupings)}, {_SPJG_AGGREGATES[outer]} "
        f"from {outer} where {' and '.join(where)}"
    )


def random_sql_batch(seed: int, query_count: Optional[int] = None) -> str:
    """A seed-determined batch over the *widened* SQL surface.

    Queries mix LEFT OUTER JOIN (sometimes with a null-rejecting WHERE, so
    the simplifier reduces them to inner joins), EXISTS / NOT EXISTS and
    IN / NOT IN subquery predicates (decorrelated to semi/anti join
    extensions), and plain SPJG queries. Shapes draw from small pools so
    batches regularly contain similar subexpressions — both between
    widened queries (shared semi-join build sides) and across the
    inner/outer boundary (reduced outer joins matching plain join spools).
    """
    rng = random.Random(seed)
    if query_count is None:
        query_count = rng.randint(2, 3)
    queries: List[str] = []
    for _ in range(query_count):
        roll = rng.random()
        if roll < 0.35:
            queries.append(_random_left_join_query(rng))
        elif roll < 0.75:
            queries.append(_random_subquery_query(rng))
        else:
            queries.append(random_spjg_query(rng))
    return ";\n".join(queries)


def complex_join_batch(seed: int = 11) -> str:
    """Two queries joining all eight TPC-H tables, aggregated by region,
    with different local predicates (Table 4)."""
    rng = random.Random(seed)
    first = _EIGHT_TABLE_TEMPLATE.format(
        date_cut="1996-07-01",
        low=rng.randint(0, 3),
        high=rng.randint(20, 25),
        size=rng.randint(25, 40),
    )
    second = _EIGHT_TABLE_TEMPLATE.format(
        date_cut="1995-03-15",
        low=rng.randint(2, 6),
        high=rng.randint(18, 23),
        size=rng.randint(30, 50),
    )
    return first + ";\n" + second


_PAIR_TEMPLATES = [
    # (tables, join+local predicates, aggregate, the two groupings)
    (
        "customer, orders, lineitem",
        "c_custkey = o_custkey and o_orderkey = l_orderkey "
        "and o_totalprice < 200000",
        "sum(l_extendedprice)",
        ("c_nationkey", "c_mktsegment"),
    ),
    (
        "orders, lineitem, part",
        "o_orderkey = l_orderkey and l_partkey = p_partkey and p_size < 30",
        "sum(l_quantity)",
        ("o_orderstatus", "o_orderpriority"),
    ),
    (
        "nation, customer, orders",
        "n_nationkey = c_nationkey and c_custkey = o_custkey "
        "and c_acctbal > 0",
        "sum(o_totalprice)",
        ("n_regionkey", "n_name"),
    ),
]


def independent_pairs_batch() -> str:
    """Six queries in three *independent* pairs, each pair sharing one
    subexpression over a different join chain.

    Unlike :func:`scaleup_batch` — where one big spool feeds every query
    and dominates the runtime — this batch's heavy work (two kept spools
    plus one pair the optimizer leaves unshared) is mutually independent,
    so the parallel executor can overlap the materializations themselves.
    Used by the serving benchmark and the concurrency suites."""
    queries: List[str] = []
    for tables, where, agg, groupings in _PAIR_TEMPLATES:
        for grouping in groupings:
            queries.append(
                f"select {grouping}, {agg} as v from {tables}\n"
                f"where {where} group by {grouping}"
            )
    return ";\n".join(queries)
