"""SQL lexer.

Produces a flat token stream; keywords are case-insensitive and reported
with their canonical upper-case spelling. String literals use single quotes
with ``''`` escaping. Numbers are INT or FLOAT tokens.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List

from ..errors import LexerError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "AS",
    "AND", "OR", "NOT", "ASC", "DESC", "WITH", "SUM", "COUNT", "MIN",
    "MAX", "AVG", "DATE", "BETWEEN", "IN", "DISTINCT",
    "JOIN", "LEFT", "RIGHT", "OUTER", "INNER", "ON", "EXISTS",
}


class TokenType(enum.Enum):
    """Token categories produced by the lexer."""
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"  # = <> < <= > >= + - * /
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    SEMICOLON = ";"
    STAR = "*"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexed token: category, value, and source offset."""

    type: TokenType
    value: Any
    position: int

    def matches_keyword(self, keyword: str) -> bool:
        """Whether this token is the given (canonical) keyword."""
        return self.type is TokenType.KEYWORD and self.value == keyword

    def __repr__(self) -> str:
        return f"{self.type.value}:{self.value!r}@{self.position}"


_OPERATOR_STARTS = "=<>+-/!"


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`LexerError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            # Line comment.
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word.lower(), start))
            continue
        if ch.isdigit():
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # Only a decimal point when followed by a digit; else it
                    # is a qualifier dot (e.g. after a number? never valid,
                    # but keep the lexer simple and strict).
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            literal = text[start:i]
            value: Any = float(literal) if seen_dot else int(literal)
            tokens.append(Token(TokenType.NUMBER, value, start))
            continue
        if ch == "'":
            start = i
            i += 1
            parts: List[str] = []
            while True:
                if i >= n:
                    raise LexerError("unterminated string literal", start)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(text[i])
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), start))
            continue
        if ch in _OPERATOR_STARTS:
            start = i
            if ch == "<" and i + 1 < n and text[i + 1] in "=>":
                op = text[i : i + 2]
                i += 2
            elif ch == ">" and i + 1 < n and text[i + 1] == "=":
                op = ">="
                i += 2
            elif ch == "!" and i + 1 < n and text[i + 1] == "=":
                op = "<>"
                i += 2
            elif ch == "!":
                raise LexerError(f"unexpected character {ch!r}", i)
            else:
                op = ch
                i += 1
            tokens.append(Token(TokenType.OPERATOR, op, start))
            continue
        simple = {
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            ";": TokenType.SEMICOLON,
            "*": TokenType.STAR,
        }
        if ch in simple:
            tokens.append(Token(simple[ch], ch, i))
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, None, n))
    return tokens
