"""SQL frontend: lexer, parser, and binder for the SPJG subset used by the
paper's workloads (plus WITH, scalar subqueries, ORDER BY, and batches)."""

from .lexer import Token, TokenType, tokenize
from .parser import parse_batch, parse_statement
from .binder import Binder, bind_batch, bind_sql

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "parse_batch",
    "parse_statement",
    "Binder",
    "bind_batch",
    "bind_sql",
]
