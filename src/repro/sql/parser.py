"""Recursive-descent SQL parser for the supported subset.

Grammar (informally)::

    batch      := statement (';' statement)* ';'?
    statement  := [WITH cte (',' cte)*] select
    cte        := ident AS '(' select ')'
    select     := SELECT select_item (',' select_item)*
                  FROM table_item (',' table_item)*
                  [WHERE expr] [GROUP BY column_list] [HAVING expr]
                  [ORDER BY order_item (',' order_item)*]
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | predicate
    predicate  := additive [comparison | BETWEEN | IN]
    additive   := multiplicative (('+'|'-') multiplicative)*
    mult       := primary (('*'|'/') primary)*
    primary    := literal | DATE string | aggregate | column | '(' expr ')'
                | '(' select ')'
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from .ast import (
    CommonTableExpr,
    OrderItem,
    SelectItem,
    SelectStatement,
    SqlBetween,
    SqlBinary,
    SqlCall,
    SqlColumn,
    SqlExists,
    SqlExpr,
    SqlInList,
    SqlInSubquery,
    SqlJoin,
    SqlLiteral,
    SqlNot,
    SqlStar,
    SqlSubquery,
    TableItem,
)
from .lexer import Token, TokenType, tokenize

_AGG_FUNCS = {"SUM", "COUNT", "MIN", "MAX", "AVG"}
_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().matches_keyword(keyword):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        token = self._advance()
        if not (token.type is TokenType.KEYWORD and token.value == keyword):
            raise ParseError(f"expected {keyword}, got {token!r}")

    def _accept(self, token_type: TokenType) -> Optional[Token]:
        if self._peek().type is token_type:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType) -> Token:
        token = self._advance()
        if token.type is not token_type:
            raise ParseError(f"expected {token_type.value}, got {token!r}")
        return token

    # -- statements -----------------------------------------------------------

    def parse_batch(self) -> List[SelectStatement]:
        """Parse a semicolon-separated statement batch."""
        statements: List[SelectStatement] = []
        while self._peek().type is not TokenType.EOF:
            statements.append(self.parse_statement())
            while self._accept(TokenType.SEMICOLON):
                pass
        if not statements:
            raise ParseError("empty statement batch")
        return statements

    def parse_statement(self) -> SelectStatement:
        """Parse one statement including its WITH prefix."""
        ctes: List[CommonTableExpr] = []
        if self._accept_keyword("WITH"):
            while True:
                name = self._expect(TokenType.IDENT).value
                self._expect_keyword("AS")
                self._expect(TokenType.LPAREN)
                select = self.parse_select()
                self._expect(TokenType.RPAREN)
                ctes.append(CommonTableExpr(name=name, select=select))
                if not self._accept(TokenType.COMMA):
                    break
        statement = self.parse_select()
        statement.ctes = ctes
        return statement

    def parse_select(self) -> SelectStatement:
        """Parse a SELECT ... [ORDER BY] body."""
        self._expect_keyword("SELECT")
        select_items = [self._parse_select_item()]
        while self._accept(TokenType.COMMA):
            select_items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        from_items = [self._parse_table_item()]
        while self._accept(TokenType.COMMA):
            from_items.append(self._parse_table_item())
        joins: List[SqlJoin] = []
        while True:
            join = self._parse_join_clause()
            if join is None:
                break
            joins.append(join)
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: List[SqlExpr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_additive())
            while self._accept(TokenType.COMMA):
                group_by.append(self._parse_additive())
        having = None
        if self._accept_keyword("HAVING"):
            having = self.parse_expr()
        order_by: List[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept(TokenType.COMMA):
                order_by.append(self._parse_order_item())
        return SelectStatement(
            select_items=select_items,
            from_items=from_items,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
        )

    def _parse_join_clause(self) -> Optional[SqlJoin]:
        """Parse ``[INNER | LEFT [OUTER] | RIGHT [OUTER]] JOIN t ON expr``."""
        token = self._peek()
        if token.matches_keyword("JOIN"):
            self._advance()
            kind = "inner"
        elif token.matches_keyword("INNER"):
            self._advance()
            self._expect_keyword("JOIN")
            kind = "inner"
        elif token.matches_keyword("LEFT") or token.matches_keyword("RIGHT"):
            kind = "left" if token.value == "LEFT" else "right"
            self._advance()
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
        else:
            return None
        table = self._parse_table_item()
        self._expect_keyword("ON")
        on = self.parse_expr()
        return SqlJoin(kind=kind, table=table, on=on)

    def _parse_select_item(self) -> SelectItem:
        if self._peek().type is TokenType.STAR:
            self._advance()
            return SelectItem(expr=SqlStar())
        # alias.* form
        if (
            self._peek().type is TokenType.IDENT
            and self._peek(1).type is TokenType.DOT
            and self._peek(2).type is TokenType.STAR
        ):
            qualifier = self._advance().value
            self._advance()
            self._advance()
            return SelectItem(expr=SqlStar(qualifier=qualifier))
        expr = self._parse_additive()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect(TokenType.IDENT).value
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def _parse_table_item(self) -> TableItem:
        name = self._expect(TokenType.IDENT).value
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect(TokenType.IDENT).value
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return TableItem(name=name, alias=alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_additive()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        elif self._accept_keyword("ASC"):
            descending = False
        return OrderItem(expr=expr, descending=descending)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> SqlExpr:
        """Parse a boolean expression (OR precedence root)."""
        return self._parse_or()

    def _parse_or(self) -> SqlExpr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = SqlBinary("OR", left, right)
        return left

    def _parse_and(self) -> SqlExpr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = SqlBinary("AND", left, right)
        return left

    def _parse_not(self) -> SqlExpr:
        if self._accept_keyword("NOT"):
            return SqlNot(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> SqlExpr:
        if self._peek().matches_keyword("EXISTS"):
            self._advance()
            self._expect(TokenType.LPAREN)
            select = self.parse_select()
            self._expect(TokenType.RPAREN)
            return SqlExists(select=select)
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISONS:
            op = self._advance().value
            right = self._parse_additive()
            return SqlBinary(op, left, right)
        negated = False
        if token.matches_keyword("NOT"):
            follower = self._peek(1)
            if follower.matches_keyword("BETWEEN") or follower.matches_keyword("IN"):
                self._advance()
                negated = True
                token = self._peek()
        if token.matches_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return SqlBetween(subject=left, low=low, high=high, negated=negated)
        if token.matches_keyword("IN"):
            self._advance()
            self._expect(TokenType.LPAREN)
            if self._peek().matches_keyword("SELECT"):
                select = self.parse_select()
                self._expect(TokenType.RPAREN)
                return SqlInSubquery(subject=left, select=select, negated=negated)
            options = [self._parse_additive()]
            while self._accept(TokenType.COMMA):
                options.append(self._parse_additive())
            self._expect(TokenType.RPAREN)
            return SqlInList(subject=left, options=options, negated=negated)
        return left

    def _parse_additive(self) -> SqlExpr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                op = self._advance().value
                right = self._parse_multiplicative()
                left = SqlBinary(op, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> SqlExpr:
        left = self._parse_primary()
        while True:
            token = self._peek()
            if token.type is TokenType.STAR or (
                token.type is TokenType.OPERATOR and token.value == "/"
            ):
                op = "*" if token.type is TokenType.STAR else "/"
                self._advance()
                right = self._parse_primary()
                left = SqlBinary(op, left, right)
            else:
                return left

    def _parse_primary(self) -> SqlExpr:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ("-", "+"):
            sign = self._advance().value
            inner = self._parse_primary()
            if sign == "+":
                return inner
            if isinstance(inner, SqlLiteral) and isinstance(
                inner.value, (int, float)
            ):
                return SqlLiteral(-inner.value)
            return SqlBinary("-", SqlLiteral(0), inner)
        if token.type is TokenType.NUMBER:
            self._advance()
            return SqlLiteral(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return SqlLiteral(token.value)
        if token.matches_keyword("DATE"):
            self._advance()
            literal = self._expect(TokenType.STRING)
            return SqlLiteral(literal.value, is_date=True)
        if token.type is TokenType.KEYWORD and token.value in _AGG_FUNCS:
            func = self._advance().value
            self._expect(TokenType.LPAREN)
            distinct = bool(self._accept_keyword("DISTINCT"))
            if self._peek().type is TokenType.STAR:
                self._advance()
                arg: Optional[SqlExpr] = None
            else:
                arg = self._parse_additive()
            self._expect(TokenType.RPAREN)
            return SqlCall(func=func, arg=arg, distinct=distinct)
        if token.type is TokenType.IDENT:
            name = self._advance().value
            if self._accept(TokenType.DOT):
                column = self._expect(TokenType.IDENT).value
                return SqlColumn(qualifier=name, name=column)
            return SqlColumn(qualifier=None, name=name)
        if token.type is TokenType.LPAREN:
            self._advance()
            if self._peek().matches_keyword("SELECT"):
                select = self.parse_select()
                self._expect(TokenType.RPAREN)
                return SqlSubquery(select=select)
            expr = self.parse_expr()
            self._expect(TokenType.RPAREN)
            return expr
        raise ParseError(f"unexpected token {token!r}")


def parse_statement(sql: str) -> SelectStatement:
    """Parse one statement (raises if extra tokens remain)."""
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    while parser._accept(TokenType.SEMICOLON):
        pass
    trailing = parser._peek()
    if trailing.type is not TokenType.EOF:
        raise ParseError(f"unexpected trailing token {trailing!r}")
    return statement


def parse_batch(sql: str) -> List[SelectStatement]:
    """Parse a semicolon-separated batch of statements."""
    return _Parser(tokenize(sql)).parse_batch()
