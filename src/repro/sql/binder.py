"""The binder: SQL ASTs → bound query blocks.

Name resolution against the catalog, type checking/coercion (string literals
compared to DATE columns become day numbers), aggregate normalization
(``AVG(x)`` → ``SUM(x)/COUNT(*)``; ``COUNT(x)`` ≡ ``COUNT(*)`` since the
engine has no NULLs), ``WITH`` expansion (SPJ common table expressions are
inlined per reference — re-detecting the sharing is precisely the
optimizer's job, §1), and scalar subquery extraction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..catalog.schema import Catalog
from ..errors import BindError, StorageError, UnsupportedFeatureError
from ..expr.expressions import (
    AggExpr,
    AggFunc,
    And,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
    Or,
    TableRef,
)
from ..expr.predicates import split_conjuncts
from ..logical.blocks import (
    BoundBatch,
    BoundQuery,
    JoinExtension,
    OutputColumn,
    QueryBlock,
    QueryShape,
    ScalarSubquery,
)
from ..types import DataType, comparable, date_to_int
from . import ast as sql_ast
from .parser import parse_batch as _parse_batch

_COMPARISON_OPS = {
    "=": ComparisonOp.EQ,
    "<>": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}

_ARITHMETIC_OPS = {
    "+": ArithmeticOp.ADD,
    "-": ArithmeticOp.SUB,
    "*": ArithmeticOp.MUL,
    "/": ArithmeticOp.DIV,
}

_AGG_FUNCS = {
    "SUM": AggFunc.SUM,
    "COUNT": AggFunc.COUNT,
    "MIN": AggFunc.MIN,
    "MAX": AggFunc.MAX,
    "AVG": AggFunc.AVG,
}


@dataclass
class _CteExpansion:
    """One reference to an SPJ common table expression, inlined."""

    columns: Dict[str, Expr]
    tables: List[TableRef]
    conjuncts: List[Expr]


@dataclass
class _Scope:
    """Name-resolution scope for one SELECT."""

    tables: List[Tuple[str, TableRef]] = field(default_factory=list)
    ctes: List[Tuple[str, _CteExpansion]] = field(default_factory=list)
    #: tables on the null-extended side of a LEFT/RIGHT OUTER JOIN; their
    #: columns are nullable and several constructs are gated on that.
    nullable: Set[TableRef] = field(default_factory=set)

    def all_tables(self) -> List[TableRef]:
        result = [t for _, t in self.tables]
        for _, expansion in self.ctes:
            result.extend(expansion.tables)
        return result

    def extra_conjuncts(self) -> List[Expr]:
        result: List[Expr] = []
        for _, expansion in self.ctes:
            result.extend(expansion.conjuncts)
        return result


def _split_where_ast(
    where: Optional[sql_ast.SqlExpr],
) -> Tuple[Optional[sql_ast.SqlExpr], List[Tuple[str, sql_ast.SqlExpr]]]:
    """Separate top-level EXISTS / IN-subquery conjuncts from the rest of a
    WHERE AST. Returns (remaining predicate, [(semi|anti, node), ...])."""
    if where is None:
        return None, []
    conjuncts: List[sql_ast.SqlExpr] = []

    def walk(node: sql_ast.SqlExpr) -> None:
        if isinstance(node, sql_ast.SqlBinary) and node.op == "AND":
            walk(node.left)
            walk(node.right)
        else:
            conjuncts.append(node)

    walk(where)
    rest: List[sql_ast.SqlExpr] = []
    subpredicates: List[Tuple[str, sql_ast.SqlExpr]] = []
    for conjunct in conjuncts:
        node = conjunct
        negated = False
        if isinstance(node, sql_ast.SqlNot) and isinstance(
            node.term, (sql_ast.SqlExists, sql_ast.SqlInSubquery)
        ):
            negated = True
            node = node.term
        if isinstance(node, (sql_ast.SqlExists, sql_ast.SqlInSubquery)):
            if node.negated:
                negated = not negated
            subpredicates.append(("anti" if negated else "semi", node))
        else:
            rest.append(conjunct)
    remaining: Optional[sql_ast.SqlExpr] = None
    for conjunct in rest:
        remaining = (
            conjunct
            if remaining is None
            else sql_ast.SqlBinary("AND", remaining, conjunct)
        )
    return remaining, subpredicates


def _named_columns(columns: Set[ColumnRef]) -> Tuple[OutputColumn, ...]:
    """Deterministically named passthrough outputs for a column set."""
    result: List[OutputColumn] = []
    used: Dict[str, int] = {}
    for col in sorted(columns, key=repr):
        out_name = col.column
        if out_name in used:
            used[out_name] += 1
            out_name = f"{out_name}_{used[col.column]}"
        else:
            used[out_name] = 0
        result.append(OutputColumn(name=out_name, expr=col))
    return tuple(result)


def _equality_key(
    conjunct: Expr, ext_ref: TableRef
) -> Optional[Tuple[ColumnRef, ColumnRef]]:
    """Decompose ``core_col = ext_col`` (either order) or return None."""
    if not (
        isinstance(conjunct, Comparison)
        and conjunct.op is ComparisonOp.EQ
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
    ):
        return None
    left, right = conjunct.left, conjunct.right
    if left.table_ref == ext_ref and right.table_ref != ext_ref:
        return right, left
    if right.table_ref == ext_ref and left.table_ref != ext_ref:
        return left, right
    return None


def _correlation_key(
    conjunct: Expr, inner_tables: Set[TableRef]
) -> Optional[Tuple[ColumnRef, ColumnRef]]:
    """Decompose ``outer_col = inner_col`` (either order) or return None."""
    if not (
        isinstance(conjunct, Comparison)
        and conjunct.op is ComparisonOp.EQ
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
    ):
        return None
    left, right = conjunct.left, conjunct.right
    left_inner = left.table_ref in inner_tables
    right_inner = right.table_ref in inner_tables
    if left_inner and not right_inner:
        return right, left
    if right_inner and not left_inner:
        return left, right
    return None


class Binder:
    """Binds parsed statements against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._instances = itertools.count(1)
        self._subquery_counter = itertools.count(1)

    # ------------------------------------------------------------------

    def bind_batch(
        self,
        statements: Sequence[sql_ast.SelectStatement],
        names: Optional[Sequence[str]] = None,
    ) -> BoundBatch:
        queries: List[BoundQuery] = []
        for index, statement in enumerate(statements):
            name = names[index] if names else f"Q{index + 1}"
            queries.append(self.bind_statement(statement, name))
        return BoundBatch(queries=queries)

    def bind_statement(
        self, statement: sql_ast.SelectStatement, name: str
    ) -> BoundQuery:
        cte_defs = {cte.name: cte.select for cte in statement.ctes}
        subqueries: Dict[str, QueryBlock] = {}
        block, order_by, extensions, post = self._bind_select(
            statement, name, cte_defs, subqueries, allow_order=True
        )
        return BoundQuery(
            name=name,
            block=block,
            subqueries=subqueries,
            order_by=order_by,
            extensions=extensions,
            post=post,
        )

    # ------------------------------------------------------------------

    def _bind_select(
        self,
        select: sql_ast.SelectStatement,
        name: str,
        cte_defs: Dict[str, sql_ast.SelectStatement],
        subqueries: Dict[str, QueryBlock],
        allow_order: bool,
    ) -> Tuple[
        QueryBlock,
        Tuple[Tuple[Expr, bool], ...],
        Tuple[JoinExtension, ...],
        Optional[QueryShape],
    ]:
        scope = self._build_scope(select.from_items, cte_defs, name)

        ext_ids = itertools.count(1)
        join_conjuncts: List[Expr] = []
        #: (ext_id, null-extended table, ON-local conjuncts, key pairs)
        pending_left: List[
            Tuple[str, TableRef, List[Expr], List[Tuple[ColumnRef, ColumnRef]]]
        ] = []
        for join in select.joins:
            if join.kind == "inner":
                self._bind_inner_join(
                    join, scope, cte_defs, subqueries, name, join_conjuncts
                )
            else:
                pending_left.append(
                    self._bind_outer_join(
                        join, scope, cte_defs, subqueries, name,
                        join_conjuncts, pending_left, ext_ids,
                    )
                )

        where_ast, sub_predicates = _split_where_ast(select.where)
        where_expr = (
            self._bind_expr(where_ast, scope, cte_defs, subqueries, name)
            if where_ast is not None
            else None
        )
        where_conjuncts = split_conjuncts(where_expr) + scope.extra_conjuncts()
        where_conjuncts.extend(join_conjuncts)
        for conjunct in where_conjuncts:
            if conjunct.contains_aggregate():
                raise BindError("aggregates are not allowed in WHERE")

        semi_exts: List[JoinExtension] = []
        for kind, node in sub_predicates:
            semi_exts.append(
                self._bind_subquery_extension(
                    kind, node, scope, cte_defs, name, f"x{next(ext_ids)}"
                )
            )

        group_keys: List[ColumnRef] = []
        for expr in select.group_by:
            bound = self._bind_expr(expr, scope, cte_defs, subqueries, name)
            if not isinstance(bound, ColumnRef):
                raise UnsupportedFeatureError(
                    "GROUP BY supports plain columns only"
                )
            if bound.table_ref in scope.nullable:
                raise UnsupportedFeatureError(
                    "GROUP BY over a nullable (outer-joined) column"
                )
            if bound not in group_keys:
                group_keys.append(bound)

        outputs: List[OutputColumn] = []
        used_names: Dict[str, int] = {}
        for item in select.select_items:
            for out_name, expr in self._bind_select_item(
                item, scope, cte_defs, subqueries, name
            ):
                final = out_name
                if final in used_names:
                    used_names[final] += 1
                    final = f"{final}_{used_names[out_name]}"
                else:
                    used_names[final] = 0
                outputs.append(OutputColumn(name=final, expr=expr))

        having_conjuncts: List[Expr] = []
        if select.having is not None:
            having = self._bind_expr(
                select.having, scope, cte_defs, subqueries, name
            )
            having_conjuncts = split_conjuncts(having)

        aggregates: List[AggExpr] = []
        for out in outputs:
            self._collect_aggregates(out.expr, aggregates)
        for conjunct in having_conjuncts:
            self._collect_aggregates(conjunct, aggregates)

        has_groupby = bool(group_keys) or bool(aggregates)
        if has_groupby:
            key_set = set(group_keys)
            for out in outputs:
                self._check_grouped_expr(out.expr, key_set, out.name)
        elif having_conjuncts:
            # HAVING without grouping: treat as WHERE.
            where_conjuncts.extend(having_conjuncts)
            having_conjuncts = []

        order_by: List[Tuple[Expr, bool]] = []
        if select.order_by:
            if not allow_order:
                raise UnsupportedFeatureError("ORDER BY not allowed here")
            for item in select.order_by:
                expr = self._bind_order_item(
                    item.expr, outputs, scope, cte_defs, subqueries, name
                )
                # Nullable (outer-joined) columns are allowed: the engine
                # and the reference oracle rank NULL largest (last asc,
                # first desc) with stable per-key sorts on both dtypes.
                order_by.append((expr, item.descending))

        if not pending_left and not semi_exts:
            block = QueryBlock(
                name=name,
                tables=tuple(scope.all_tables()),
                conjuncts=tuple(where_conjuncts),
                output=tuple(outputs),
                group_keys=tuple(group_keys),
                aggregates=tuple(aggregates),
                having=tuple(having_conjuncts),
            )
            return block, tuple(order_by), (), None

        return self._assemble_extended(
            name,
            scope,
            where_conjuncts,
            outputs,
            group_keys,
            aggregates,
            having_conjuncts,
            pending_left,
            semi_exts,
            tuple(order_by),
        )

    def _assemble_extended(
        self,
        name: str,
        scope: _Scope,
        where_conjuncts: List[Expr],
        outputs: List[OutputColumn],
        group_keys: List[ColumnRef],
        aggregates: List[AggExpr],
        having_conjuncts: List[Expr],
        pending_left: List[
            Tuple[str, TableRef, List[Expr], List[Tuple[ColumnRef, ColumnRef]]]
        ],
        semi_exts: List[JoinExtension],
        order_by: Tuple[Tuple[Expr, bool], ...],
    ) -> Tuple[
        QueryBlock,
        Tuple[Tuple[Expr, bool], ...],
        Tuple[JoinExtension, ...],
        QueryShape,
    ]:
        """Split an extended query into an SPJ core block, join extensions,
        and the post-extension shape (grouping/HAVING/projection applied
        above the extension joins, per SQL semantics)."""
        left_refs = {ref for _, ref, _, _ in pending_left}
        core_tables = [t for t in scope.all_tables() if t not in left_refs]
        core_set = set(core_tables)

        # WHERE conjuncts referencing null-extended columns must run after
        # the outer join, under three-valued logic.
        core_conjuncts: List[Expr] = []
        post_filters: List[Expr] = []
        for conjunct in where_conjuncts:
            touched = {col.table_ref for col in conjunct.columns()}
            if touched <= core_set:
                core_conjuncts.append(conjunct)
            else:
                post_filters.append(conjunct)

        needed: Set[ColumnRef] = set()
        for out in outputs:
            needed |= out.expr.columns()
        for conjunct in post_filters:
            needed |= conjunct.columns()
        needed |= set(group_keys)
        for agg in aggregates:
            needed |= agg.columns()
        for conjunct in having_conjuncts:
            needed |= conjunct.columns()
        for ext in semi_exts:
            needed |= {core_col for core_col, _ in ext.keys}
        for _, _, _, keys in pending_left:
            needed |= {core_col for core_col, _ in keys}

        core_block = QueryBlock(
            name=name,
            tables=tuple(core_tables),
            conjuncts=tuple(core_conjuncts),
            output=_named_columns(
                {c for c in needed if c.table_ref in core_set}
            ),
        )
        extensions: List[JoinExtension] = []
        for ext_id, ext_ref, local, keys in pending_left:
            ext_needed = {c for c in needed if c.table_ref == ext_ref}
            ext_needed |= {ext_col for _, ext_col in keys}
            extensions.append(
                JoinExtension(
                    ext_id=ext_id,
                    kind="left_outer",
                    block=QueryBlock(
                        name=f"{name}.{ext_id}",
                        tables=(ext_ref,),
                        conjuncts=tuple(local),
                        output=_named_columns(ext_needed),
                    ),
                    keys=tuple(keys),
                )
            )
        extensions.extend(semi_exts)
        post = QueryShape(
            group_keys=tuple(group_keys),
            aggregates=tuple(aggregates),
            having=tuple(having_conjuncts),
            output=tuple(outputs),
            filters=tuple(post_filters),
        )
        return core_block, order_by, tuple(extensions), post

    # -- joins and subquery predicates -------------------------------------

    def _scope_binding(
        self, item: sql_ast.TableItem, scope: _Scope
    ) -> Tuple[str, TableRef]:
        """Allocate a fresh table instance for a JOIN clause's table."""
        binding_name = (item.alias or item.name).lower()
        taken = {b for b, _ in scope.tables} | {b for b, _ in scope.ctes}
        if binding_name in taken:
            raise BindError(f"duplicate FROM alias {binding_name!r}")
        if not self.catalog.has_table(item.name):
            raise BindError(f"unknown table {item.name!r}")
        return binding_name, TableRef(
            table=self.catalog.table(item.name).name,
            instance=next(self._instances),
            alias=binding_name,
        )

    def _bind_inner_join(
        self,
        join: sql_ast.SqlJoin,
        scope: _Scope,
        cte_defs: Dict[str, sql_ast.SelectStatement],
        subqueries: Dict[str, QueryBlock],
        name: str,
        out_conjuncts: List[Expr],
    ) -> None:
        item = join.table
        if item.name in cte_defs:
            binding_name = (item.alias or item.name).lower()
            taken = {b for b, _ in scope.tables} | {b for b, _ in scope.ctes}
            if binding_name in taken:
                raise BindError(f"duplicate FROM alias {binding_name!r}")
            expansion = self._expand_cte(cte_defs[item.name], cte_defs, name)
            scope.ctes.append((binding_name, expansion))
            out_conjuncts.extend(expansion.conjuncts)
        else:
            binding_name, table_ref = self._scope_binding(item, scope)
            scope.tables.append((binding_name, table_ref))
        on = self._bind_expr(join.on, scope, cte_defs, subqueries, name)
        if on.contains_aggregate():
            raise BindError("aggregates are not allowed in ON conditions")
        out_conjuncts.extend(split_conjuncts(on))

    def _bind_outer_join(
        self,
        join: sql_ast.SqlJoin,
        scope: _Scope,
        cte_defs: Dict[str, sql_ast.SelectStatement],
        subqueries: Dict[str, QueryBlock],
        name: str,
        join_conjuncts: List[Expr],
        pending_left: List,
        ext_ids,
    ) -> Tuple[str, TableRef, List[Expr], List[Tuple[ColumnRef, ColumnRef]]]:
        item = join.table
        if item.name in cte_defs:
            raise UnsupportedFeatureError(
                "common table expressions on either side of an outer join"
            )
        binding_name, new_ref = self._scope_binding(item, scope)
        if join.kind == "right":
            # a RIGHT JOIN b ON p == b LEFT JOIN a ON p; supported only when
            # the accumulated FROM is a single plain table, so the swap is
            # unambiguous.
            if (
                scope.ctes
                or len(scope.tables) != 1
                or join_conjuncts
                or pending_left
                or scope.nullable
            ):
                raise UnsupportedFeatureError(
                    "RIGHT JOIN is supported only directly over a single "
                    "plain FROM table"
                )
            old_binding, old_ref = scope.tables[0]
            scope.tables = [(binding_name, new_ref), (old_binding, old_ref)]
            ext_ref = old_ref
        else:
            scope.tables.append((binding_name, new_ref))
            ext_ref = new_ref
        on = self._bind_expr(join.on, scope, cte_defs, subqueries, name)
        if on.contains_aggregate():
            raise BindError("aggregates are not allowed in ON conditions")
        keys: List[Tuple[ColumnRef, ColumnRef]] = []
        local: List[Expr] = []
        for conjunct in split_conjuncts(on):
            touched = {col.table_ref for col in conjunct.columns()}
            if touched <= {ext_ref}:
                local.append(conjunct)
                continue
            pair = _equality_key(conjunct, ext_ref)
            if pair is None:
                raise UnsupportedFeatureError(
                    "outer join ON conditions must be equijoin keys plus "
                    "filters on the null-extended side"
                )
            core_col, ext_col = pair
            if core_col.table_ref in scope.nullable:
                raise UnsupportedFeatureError(
                    "outer join keyed on a nullable (outer-joined) column"
                )
            keys.append((core_col, ext_col))
        if not keys:
            raise UnsupportedFeatureError(
                "outer joins require at least one equijoin key"
            )
        scope.nullable.add(ext_ref)
        return f"x{next(ext_ids)}", ext_ref, local, keys

    def _bind_subquery_extension(
        self,
        kind: str,
        node: sql_ast.SqlExpr,
        scope: _Scope,
        cte_defs: Dict[str, sql_ast.SelectStatement],
        name: str,
        ext_id: str,
    ) -> JoinExtension:
        """Decorrelate one EXISTS / IN subquery predicate into a semi/anti
        join extension whose build side is a plain SPJ block."""
        if isinstance(node, sql_ast.SqlExists):
            sub_select = node.select
            subject_ast: Optional[sql_ast.SqlExpr] = None
        else:
            assert isinstance(node, sql_ast.SqlInSubquery)
            sub_select = node.select
            subject_ast = node.subject
        if (
            sub_select.joins
            or sub_select.group_by
            or sub_select.having
            or sub_select.order_by
            or sub_select.ctes
        ):
            raise UnsupportedFeatureError(
                "EXISTS/IN subqueries must be plain select-project-join"
            )
        inner_scope = self._build_scope(sub_select.from_items, cte_defs, name)
        if inner_scope.ctes:
            raise UnsupportedFeatureError(
                "common table expressions inside EXISTS/IN subqueries"
            )
        inner_tables = {t for _, t in inner_scope.tables}
        combined = _Scope(
            tables=inner_scope.tables + scope.tables,
            ctes=list(scope.ctes),
            nullable=set(scope.nullable),
        )
        local_subqueries: Dict[str, QueryBlock] = {}
        conjuncts: List[Expr] = []
        if sub_select.where is not None:
            where = self._bind_expr(
                sub_select.where, combined, cte_defs, local_subqueries, name
            )
            conjuncts = split_conjuncts(where)
        if local_subqueries:
            raise UnsupportedFeatureError(
                "scalar subqueries inside EXISTS/IN subqueries"
            )
        keys: List[Tuple[ColumnRef, ColumnRef]] = []
        local: List[Expr] = []
        for conjunct in conjuncts:
            if conjunct.contains_aggregate():
                raise BindError("aggregates are not allowed in WHERE")
            touched = {col.table_ref for col in conjunct.columns()}
            if touched <= inner_tables:
                local.append(conjunct)
                continue
            pair = _correlation_key(conjunct, inner_tables)
            if pair is None:
                raise UnsupportedFeatureError(
                    "EXISTS/IN correlation must be column-equality conjuncts"
                )
            outer_col, inner_col = pair
            if outer_col.table_ref in scope.nullable:
                raise UnsupportedFeatureError(
                    "EXISTS/IN correlated on a nullable (outer-joined) column"
                )
            keys.append((outer_col, inner_col))
        if subject_ast is not None:
            if len(sub_select.select_items) != 1 or isinstance(
                sub_select.select_items[0].expr, sql_ast.SqlStar
            ):
                raise BindError(
                    "IN subqueries must select exactly one column"
                )
            inner_only = _Scope(tables=list(inner_scope.tables))
            inner_expr = self._bind_expr(
                sub_select.select_items[0].expr,
                inner_only, cte_defs, local_subqueries, name,
            )
            subject = self._bind_expr(
                subject_ast, scope, cte_defs, local_subqueries, name
            )
            if not (
                isinstance(inner_expr, ColumnRef)
                and isinstance(subject, ColumnRef)
            ):
                raise UnsupportedFeatureError(
                    "IN subqueries support plain column membership only"
                )
            if subject.table_ref in scope.nullable:
                raise UnsupportedFeatureError(
                    "IN subject over a nullable (outer-joined) column"
                )
            keys.append((subject, inner_expr))
        if not keys:
            raise UnsupportedFeatureError(
                "uncorrelated EXISTS/IN subqueries"
            )
        block = QueryBlock(
            name=f"{name}.{ext_id}",
            tables=tuple(t for _, t in inner_scope.tables),
            conjuncts=tuple(local),
            output=_named_columns({inner_col for _, inner_col in keys}),
        )
        return JoinExtension(
            ext_id=ext_id, kind=kind, block=block, keys=tuple(keys)
        )

    # -- scope ------------------------------------------------------------

    def _build_scope(
        self,
        from_items: Sequence[sql_ast.TableItem],
        cte_defs: Dict[str, sql_ast.SelectStatement],
        name: str,
    ) -> _Scope:
        scope = _Scope()
        seen: set = set()
        for item in from_items:
            binding_name = (item.alias or item.name).lower()
            if binding_name in seen:
                raise BindError(f"duplicate FROM alias {binding_name!r}")
            seen.add(binding_name)
            if item.name in cte_defs:
                expansion = self._expand_cte(
                    cte_defs[item.name], cte_defs, name
                )
                scope.ctes.append((binding_name, expansion))
                continue
            if not self.catalog.has_table(item.name):
                raise BindError(f"unknown table {item.name!r}")
            table_ref = TableRef(
                table=self.catalog.table(item.name).name,
                instance=next(self._instances),
                alias=binding_name,
            )
            scope.tables.append((binding_name, table_ref))
        return scope

    def _expand_cte(
        self,
        select: sql_ast.SelectStatement,
        cte_defs: Dict[str, sql_ast.SelectStatement],
        name: str,
    ) -> _CteExpansion:
        if select.group_by or any(
            isinstance(i.expr, sql_ast.SqlCall) for i in select.select_items
        ):
            raise UnsupportedFeatureError(
                "aggregated common table expressions cannot be inlined; "
                "only select-project-join WITH clauses are supported"
            )
        if select.order_by or select.having or select.ctes:
            raise UnsupportedFeatureError(
                "ORDER BY/HAVING/nested WITH inside a WITH clause"
            )
        inner_scope = self._build_scope(select.from_items, cte_defs, name)
        subqueries: Dict[str, QueryBlock] = {}
        conjuncts: List[Expr] = list(inner_scope.extra_conjuncts())
        if select.where is not None:
            where = self._bind_expr(
                select.where, inner_scope, cte_defs, subqueries, name
            )
            conjuncts.extend(split_conjuncts(where))
        if subqueries:
            raise UnsupportedFeatureError("subqueries inside WITH clauses")
        columns: Dict[str, Expr] = {}
        for item in select.select_items:
            if isinstance(item.expr, sql_ast.SqlStar):
                for col_name, expr in self._star_columns(
                    item.expr, inner_scope
                ):
                    columns.setdefault(col_name, expr)
                continue
            bound = self._bind_expr(
                item.expr, inner_scope, cte_defs, subqueries, name
            )
            out_name = item.alias or self._default_name(item.expr, None)
            if out_name is None:
                raise BindError(
                    "WITH clause select items need aliases"
                )
            columns[out_name] = bound
        return _CteExpansion(
            columns=columns,
            tables=inner_scope.all_tables(),
            conjuncts=conjuncts,
        )

    # -- select items -----------------------------------------------------

    def _star_columns(
        self, star: sql_ast.SqlStar, scope: _Scope
    ) -> List[Tuple[str, Expr]]:
        result: List[Tuple[str, Expr]] = []
        for binding_name, table_ref in scope.tables:
            if star.qualifier and binding_name != star.qualifier.lower():
                continue
            schema = self.catalog.table(table_ref.table)
            for column in schema.columns:
                result.append(
                    (
                        column.name,
                        ColumnRef(table_ref, column.name, column.data_type),
                    )
                )
        for binding_name, expansion in scope.ctes:
            if star.qualifier and binding_name != star.qualifier.lower():
                continue
            for col_name, expr in expansion.columns.items():
                result.append((col_name, expr))
        if not result:
            raise BindError(f"* matched no tables (qualifier {star.qualifier!r})")
        return result

    def _bind_select_item(
        self,
        item: sql_ast.SelectItem,
        scope: _Scope,
        cte_defs,
        subqueries,
        name: str,
    ) -> List[Tuple[str, Expr]]:
        if isinstance(item.expr, sql_ast.SqlStar):
            return self._star_columns(item.expr, scope)
        bound = self._bind_expr(item.expr, scope, cte_defs, subqueries, name)
        out_name = item.alias or self._default_name(item.expr, bound) or "col"
        return [(out_name, bound)]

    @staticmethod
    def _default_name(
        expr: sql_ast.SqlExpr, bound: Optional[Expr]
    ) -> Optional[str]:
        if isinstance(expr, sql_ast.SqlColumn):
            return expr.name
        if isinstance(expr, sql_ast.SqlCall):
            return expr.func.lower()
        return None

    def _check_grouped_expr(self, expr: Expr, keys: set, context: str) -> None:
        """In a grouped query, non-aggregate parts may reference keys only."""
        if isinstance(expr, AggExpr):
            return
        if isinstance(expr, ColumnRef):
            if expr not in keys:
                raise BindError(
                    f"column {expr!r} in {context!r} is neither grouped "
                    "nor aggregated"
                )
            return
        for child in expr.children():
            self._check_grouped_expr(child, keys, context)

    def _collect_aggregates(self, expr: Expr, out: List[AggExpr]) -> None:
        for node in expr.walk():
            if isinstance(node, AggExpr) and node not in out:
                out.append(node)

    def _bind_order_item(
        self,
        expr: sql_ast.SqlExpr,
        outputs: List[OutputColumn],
        scope: _Scope,
        cte_defs,
        subqueries,
        name: str,
    ) -> Expr:
        if isinstance(expr, sql_ast.SqlColumn) and expr.qualifier is None:
            for out in outputs:
                if out.name == expr.name:
                    return out.expr
        bound = self._bind_expr(expr, scope, cte_defs, subqueries, name)
        if not any(out.expr == bound for out in outputs):
            raise UnsupportedFeatureError(
                "ORDER BY must reference an output column"
            )
        return bound

    # -- expressions --------------------------------------------------------

    def _bind_expr(
        self,
        expr: sql_ast.SqlExpr,
        scope: _Scope,
        cte_defs: Dict[str, sql_ast.SelectStatement],
        subqueries: Dict[str, QueryBlock],
        name: str,
    ) -> Expr:
        if isinstance(expr, sql_ast.SqlLiteral):
            if expr.is_date:
                return Literal(date_to_int(expr.value), DataType.DATE)
            return Literal(expr.value)
        if isinstance(expr, sql_ast.SqlColumn):
            return self._resolve_column(expr, scope)
        if isinstance(expr, sql_ast.SqlCall):
            return self._bind_call(expr, scope, cte_defs, subqueries, name)
        if isinstance(expr, sql_ast.SqlBinary):
            return self._bind_binary(expr, scope, cte_defs, subqueries, name)
        if isinstance(expr, sql_ast.SqlNot):
            return Not(
                self._bind_expr(expr.term, scope, cte_defs, subqueries, name)
            )
        if isinstance(expr, sql_ast.SqlBetween):
            subject = self._bind_expr(
                expr.subject, scope, cte_defs, subqueries, name
            )
            low = self._bind_expr(expr.low, scope, cte_defs, subqueries, name)
            high = self._bind_expr(expr.high, scope, cte_defs, subqueries, name)
            low_cmp = self._make_comparison(ComparisonOp.GE, subject, low)
            high_cmp = self._make_comparison(ComparisonOp.LE, subject, high)
            between = And((low_cmp, high_cmp))
            return Not(between) if expr.negated else between
        if isinstance(expr, sql_ast.SqlInList):
            subject = self._bind_expr(
                expr.subject, scope, cte_defs, subqueries, name
            )
            options = [
                self._make_comparison(
                    ComparisonOp.EQ,
                    subject,
                    self._bind_expr(o, scope, cte_defs, subqueries, name),
                )
                for o in expr.options
            ]
            membership: Expr = options[0] if len(options) == 1 else Or(tuple(options))
            return Not(membership) if expr.negated else membership
        if isinstance(expr, sql_ast.SqlSubquery):
            return self._bind_subquery(expr, cte_defs, subqueries, name)
        if isinstance(expr, (sql_ast.SqlExists, sql_ast.SqlInSubquery)):
            raise UnsupportedFeatureError(
                "EXISTS/IN subqueries are supported only as top-level "
                "WHERE conjuncts"
            )
        if isinstance(expr, sql_ast.SqlStar):
            raise BindError("* is only allowed in the select list")
        raise BindError(f"cannot bind expression {expr!r}")

    def _resolve_column(
        self, column: sql_ast.SqlColumn, scope: _Scope
    ) -> Expr:
        qualifier = column.qualifier.lower() if column.qualifier else None
        matches: List[Expr] = []
        for binding_name, table_ref in scope.tables:
            if qualifier is not None and binding_name != qualifier:
                continue
            schema = self.catalog.table(table_ref.table)
            if schema.has_column(column.name):
                matches.append(
                    ColumnRef(
                        table_ref, column.name, schema.column_type(column.name)
                    )
                )
        for binding_name, expansion in scope.ctes:
            if qualifier is not None and binding_name != qualifier:
                continue
            if column.name in expansion.columns:
                matches.append(expansion.columns[column.name])
        if not matches:
            raise BindError(
                f"unknown column "
                f"{column.qualifier + '.' if column.qualifier else ''}{column.name}"
            )
        if len(matches) > 1:
            raise BindError(f"ambiguous column {column.name!r}")
        return matches[0]

    def _bind_call(
        self, call: sql_ast.SqlCall, scope, cte_defs, subqueries, name
    ) -> Expr:
        if call.distinct:
            raise UnsupportedFeatureError("DISTINCT aggregates")
        func = _AGG_FUNCS[call.func]
        if func is AggFunc.COUNT:
            if call.arg is not None:
                arg = self._bind_expr(call.arg, scope, cte_defs, subqueries, name)
                if any(
                    col.table_ref in scope.nullable for col in arg.columns()
                ):
                    raise UnsupportedFeatureError(
                        "COUNT over a nullable (outer-joined) column"
                    )
            # Base columns are never NULL, so COUNT(x) == COUNT(*); nullable
            # (outer-joined) arguments are gated above.
            return AggExpr(AggFunc.COUNT, None)
        if call.arg is None:
            raise BindError(f"{call.func} requires an argument")
        arg = self._bind_expr(call.arg, scope, cte_defs, subqueries, name)
        if arg.contains_aggregate():
            raise BindError("nested aggregates are not allowed")
        if func is AggFunc.AVG:
            if any(col.table_ref in scope.nullable for col in arg.columns()):
                raise UnsupportedFeatureError(
                    "AVG over a nullable (outer-joined) column"
                )
            return Arithmetic(
                ArithmeticOp.DIV,
                AggExpr(AggFunc.SUM, arg),
                AggExpr(AggFunc.COUNT, None),
            )
        return AggExpr(func, arg)

    def _bind_binary(
        self, binary: sql_ast.SqlBinary, scope, cte_defs, subqueries, name
    ) -> Expr:
        if binary.op == "AND":
            return And(
                (
                    self._bind_expr(binary.left, scope, cte_defs, subqueries, name),
                    self._bind_expr(binary.right, scope, cte_defs, subqueries, name),
                )
            )
        if binary.op == "OR":
            return Or(
                (
                    self._bind_expr(binary.left, scope, cte_defs, subqueries, name),
                    self._bind_expr(binary.right, scope, cte_defs, subqueries, name),
                )
            )
        left = self._bind_expr(binary.left, scope, cte_defs, subqueries, name)
        right = self._bind_expr(binary.right, scope, cte_defs, subqueries, name)
        if binary.op in _COMPARISON_OPS:
            return self._make_comparison(_COMPARISON_OPS[binary.op], left, right)
        if binary.op in _ARITHMETIC_OPS:
            return Arithmetic(_ARITHMETIC_OPS[binary.op], left, right)
        raise BindError(f"unknown operator {binary.op!r}")

    def _make_comparison(
        self, op: ComparisonOp, left: Expr, right: Expr
    ) -> Comparison:
        left, right = self._coerce_pair(left, right)
        if not comparable(left.data_type, right.data_type):
            raise BindError(
                f"cannot compare {left.data_type} with {right.data_type}"
            )
        return Comparison(op, left, right)

    @staticmethod
    def _coerce_pair(left: Expr, right: Expr) -> Tuple[Expr, Expr]:
        """Turn ISO-date string literals into day numbers when compared with
        DATE expressions (``o_orderdate < '1996-07-01'``)."""

        def coerce(literal: Expr, other: Expr) -> Expr:
            if (
                isinstance(literal, Literal)
                and literal.data_type is DataType.STRING
                and other.data_type is DataType.DATE
            ):
                # Only the expected conversion failures (malformed ISO
                # string, unconvertible value) fall through to the
                # comparability type error; anything else is a real defect
                # and must propagate.
                try:
                    return Literal(date_to_int(literal.value), DataType.DATE)
                except (ValueError, StorageError):
                    return literal
            return literal

        return coerce(left, right), coerce(right, left)

    def _bind_subquery(
        self,
        subquery: sql_ast.SqlSubquery,
        cte_defs: Dict[str, sql_ast.SelectStatement],
        subqueries: Dict[str, QueryBlock],
        name: str,
    ) -> Expr:
        select = subquery.select
        if select.order_by:
            raise UnsupportedFeatureError("ORDER BY inside a scalar subquery")
        sid = f"sq{next(self._subquery_counter)}"
        block, _, extensions, _post = self._bind_select(
            select, f"{name}.{sid}", cte_defs, subqueries, allow_order=False
        )
        if extensions:
            raise UnsupportedFeatureError(
                "outer/semi joins inside scalar subqueries"
            )
        if len(block.output) != 1:
            raise BindError("scalar subquery must produce exactly one column")
        if block.group_keys:
            raise UnsupportedFeatureError(
                "grouped (non-scalar) subqueries are not supported"
            )
        if not block.aggregates:
            raise UnsupportedFeatureError(
                "scalar subqueries must aggregate to a single row"
            )
        subqueries[sid] = block
        return ScalarSubquery(sid, block.output[0].expr.data_type)


def bind_batch(
    catalog: Catalog, sql: str, names: Optional[Sequence[str]] = None
) -> BoundBatch:
    """Parse and bind a semicolon-separated batch."""
    return Binder(catalog).bind_batch(_parse_batch(sql), names)


def bind_sql(catalog: Catalog, sql: str, name: str = "Q1") -> BoundQuery:
    """Parse and bind a single statement."""
    statements = _parse_batch(sql)
    if len(statements) != 1:
        raise BindError(f"expected one statement, got {len(statements)}")
    return Binder(catalog).bind_statement(statements[0], name)
