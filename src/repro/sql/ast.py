"""SQL abstract syntax tree nodes (parser output, binder input)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


class SqlExpr:
    """Base class for SQL-level expressions."""


@dataclass
class SqlColumn(SqlExpr):
    """Possibly-qualified column reference (``alias.col`` or ``col``)."""

    qualifier: Optional[str]
    name: str


@dataclass
class SqlLiteral(SqlExpr):
    value: Any
    is_date: bool = False  # DATE 'yyyy-mm-dd' literals


@dataclass
class SqlStar(SqlExpr):
    """``*`` or ``alias.*`` in a select list."""

    qualifier: Optional[str] = None


@dataclass
class SqlCall(SqlExpr):
    """Aggregate function call: SUM/COUNT/MIN/MAX/AVG."""

    func: str
    arg: Optional[SqlExpr]  # None for COUNT(*)
    distinct: bool = False


@dataclass
class SqlBinary(SqlExpr):
    """Binary operator: comparisons, arithmetic, AND, OR."""

    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass
class SqlNot(SqlExpr):
    term: SqlExpr


@dataclass
class SqlBetween(SqlExpr):
    subject: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False


@dataclass
class SqlInList(SqlExpr):
    subject: SqlExpr
    options: List[SqlExpr]
    negated: bool = False


@dataclass
class SqlSubquery(SqlExpr):
    """A scalar subquery used inside an expression."""

    select: "SelectStatement"


@dataclass
class SqlExists(SqlExpr):
    """``[NOT] EXISTS (select ...)`` predicate."""

    select: "SelectStatement"
    negated: bool = False


@dataclass
class SqlInSubquery(SqlExpr):
    """``subject [NOT] IN (select ...)`` predicate."""

    subject: SqlExpr
    select: "SelectStatement"
    negated: bool = False


@dataclass
class SelectItem:
    expr: SqlExpr
    alias: Optional[str] = None


@dataclass
class TableItem:
    name: str
    alias: Optional[str] = None


@dataclass
class SqlJoin:
    """An explicit join clause: ``kind JOIN table ON condition``.

    ``kind`` is one of ``"inner"``, ``"left"``, ``"right"``. Joins apply
    left-to-right to the accumulated FROM product.
    """

    kind: str
    table: TableItem
    on: SqlExpr


@dataclass
class OrderItem:
    expr: SqlExpr
    descending: bool = False


@dataclass
class CommonTableExpr:
    name: str
    select: "SelectStatement"


@dataclass
class SelectStatement:
    select_items: List[SelectItem]
    from_items: List[TableItem]
    joins: List[SqlJoin] = field(default_factory=list)
    where: Optional[SqlExpr] = None
    group_by: List[SqlExpr] = field(default_factory=list)
    having: Optional[SqlExpr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    ctes: List[CommonTableExpr] = field(default_factory=list)
