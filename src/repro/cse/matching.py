"""View matching of consumer groups against candidate CSEs (paper §5.1).

Candidate CSEs are treated "in the same way as materialized views": a
consumer group matches a CSE when the CSE provably contains every row and
column the consumer needs; the substitute is a spool read plus compensation
(residual predicate, and a re-aggregation when the CSE's grouping is finer
than the consumer's).

The same matcher serves both the CSE's *constructed* consumers (where it
always succeeds, by §4.2's construction) and **stacked** consumers found
inside other candidates' bodies (§5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..equiv import check_consumer_match
from ..expr.expressions import AggExpr, ColumnRef, Expr, TableRef
from ..expr.predicates import (
    EquivalenceClasses,
    implied_by_equalities,
    range_implies,
)
from ..obs import active_journal
from ..optimizer.aggs import AggCompute, reaggregate_computes
from ..optimizer.memo import BlockInfo, Group
from .compatibility import slot_assignment
from .construct import (
    CseDefinition,
    consumer_conjuncts,
    consumer_table_map,
    remap_expr,
)


@dataclass
class ConsumerSpec:
    """Everything needed to substitute one consumer group with a spool read."""

    group: Group
    cse_id: str
    #: consumer table instance -> CSE body instance.
    table_map: Dict[TableRef, TableRef]
    #: residual conjuncts, in *consumer* column space.
    residual: Tuple[Expr, ...]
    #: work-table column name -> consumer-side expression key.
    column_map: Tuple[Tuple[str, Expr], ...]
    #: re-aggregation; None when the CSE grouping equals the consumer's (or
    #: the CSE is not aggregated).
    reagg_keys: Optional[Tuple[ColumnRef, ...]] = None
    reagg_computes: Optional[Tuple[AggCompute, ...]] = None

    @property
    def needs_reagg(self) -> bool:
        """Whether the consumer must re-aggregate the spool."""
        return self.reagg_keys is not None


def try_match_consumer(
    definition: CseDefinition,
    group: Group,
    info: BlockInfo,
) -> Optional[ConsumerSpec]:
    """Attempt to match ``group`` against ``definition``; returns the
    compensation recipe or None.

    Checks, in body column space:

    1. identical table signature (slot sets);
    2. the consumer's predicate implies the CSE's joint equalities;
    3. the consumer's predicate implies every covering conjunct
       (so the CSE contains all the consumer's rows);
    4. the residual (consumer conjuncts the CSE does not guarantee) references
       only columns the CSE outputs — grouping keys, for aggregated CSEs;
    5. for aggregated CSEs: consumer keys ⊆ CSE keys and consumer aggregates
       ⊆ CSE aggregates.
    """
    if group.signature != definition.signature:
        return None
    body_by_slot: Dict[Tuple[str, int], TableRef] = {}
    assignment = slot_assignment(definition.block.tables)
    for tref, slot in assignment.items():
        body_by_slot[slot] = tref
    consumer_slots = set(slot_assignment(group.tables).values())
    if consumer_slots != set(body_by_slot):
        return None
    table_map = consumer_table_map(group, body_by_slot)

    mapped_conjuncts = [
        remap_expr(c, table_map) for c in consumer_conjuncts(group, info)
    ]
    consumer_classes = EquivalenceClasses.from_conjuncts(mapped_conjuncts)

    # 2. Joint equalities must hold in the consumer.
    for equality in definition.joint_equalities:
        if not implied_by_equalities(equality, consumer_classes):
            return None

    # 3. Every covering conjunct must be implied by the consumer's predicate.
    for covering in definition.covering_conjuncts:
        if not _implied_by_any(covering, mapped_conjuncts):
            return None

    # Residual: consumer conjuncts the CSE does not already guarantee.
    residual_body: List[Expr] = []
    for conjunct in mapped_conjuncts:
        if implied_by_equalities(conjunct, definition.joint_classes):
            continue
        if any(
            guaranteed == conjunct or range_implies(guaranteed, conjunct)
            for guaranteed in definition.covering_conjuncts
        ):
            continue
        residual_body.append(conjunct)

    # 4. Residual columns must be available in the CSE output.
    output_exprs = {o.expr for o in definition.outputs}
    available_columns = {
        e for e in output_exprs if isinstance(e, ColumnRef)
    }
    for conjunct in residual_body:
        if not conjunct.columns() <= available_columns:
            return None

    reagg_keys: Optional[Tuple[ColumnRef, ...]] = None
    reagg_computes: Optional[Tuple[AggCompute, ...]] = None
    if definition.has_groupby:
        mapped_keys = set()
        for key in group.agg_keys:
            mapped_key = remap_expr(key, table_map)
            if not isinstance(mapped_key, ColumnRef):
                return None
            mapped_keys.add(mapped_key)
        cse_keys = set(definition.group_keys)
        if not mapped_keys <= cse_keys:
            return None
        agg_outs: List[AggExpr] = []
        for out in group.agg_outs:
            if not isinstance(out, AggExpr):
                return None
            mapped_out = remap_expr(out, table_map)
            if mapped_out not in set(definition.aggregates):
                return None
            agg_outs.append(out)
        if mapped_keys != cse_keys:
            reagg_keys = tuple(group.agg_keys)
            reagg_computes = reaggregate_computes(agg_outs)
    else:
        # 5'. SPJ case: consumer's required columns must be in the output.
        for expr in group.required_outputs:
            mapped = remap_expr(expr, table_map)
            if not mapped.columns() <= available_columns:
                return None

    # Final admission gate: the independent bag-semantics checker
    # (repro.equiv) must *prove* the containment obligations this matcher
    # just derived. Anything short of a proof falls back to no sharing for
    # this consumer — the gate is what makes widened-surface matches
    # (semi/anti build sides, reduced outer joins) safe to admit.
    verdict = check_consumer_match(definition, group, info)
    active_journal().event(
        "equiv",
        cse_id=definition.cse_id,
        consumer=f"g{group.gid}",
        outcome=verdict.outcome,
        reason=verdict.reason,
    )
    if not verdict.proved:
        return None

    inverse = {v: k for k, v in table_map.items()}
    residual = tuple(remap_expr(c, inverse) for c in residual_body)
    column_map = tuple(
        (out.name, remap_expr(out.expr, inverse)) for out in definition.outputs
    )
    return ConsumerSpec(
        group=group,
        cse_id=definition.cse_id,
        table_map=table_map,
        residual=residual,
        column_map=column_map,
        reagg_keys=reagg_keys,
        reagg_computes=reagg_computes,
    )


def _implied_by_any(covering: Expr, conjuncts: Sequence[Expr]) -> bool:
    return any(
        have == covering or range_implies(have, covering) for have in conjuncts
    )


def build_consumer_specs(
    definition: CseDefinition,
    infos: Dict[str, BlockInfo],
) -> List[ConsumerSpec]:
    """Matching recipes for the CSE's constructed consumers. Construction
    guarantees success; a failed match indicates an internal inconsistency
    and the consumer is silently dropped (conservative)."""
    specs: List[ConsumerSpec] = []
    for group in definition.consumer_groups:
        info = infos[group.block.name]
        spec = try_match_consumer(definition, group, info)
        if spec is not None:
            specs.append(spec)
    return specs
