"""Core contribution: detection, construction, and cost-based optimization
of covering subexpressions (CSEs), after Zhou, Larson, Freytag & Lehner,
"Efficient Exploitation of Similar Subexpressions for Query Processing"
(SIGMOD 2007)."""

from .signature import TableSignature, signature_of_tree
from .manager import CseManager
from .compatibility import (
    compatibility_groups,
    derive_compatibility_from_parts,
    join_compatible,
)
from .construct import CseDefinition, construct_cse, estimate_cse_rows
from .candidates import CandidateCse, CandidateIdAllocator, generate_candidates
from .heuristics import (
    HeuristicConfig,
    PruneTrace,
    heuristic1_keep,
    heuristic2_filter,
    heuristic4_filter,
    is_contained,
    merge_benefit,
)
from .matching import ConsumerSpec, build_consumer_specs, try_match_consumer
from .enumeration import SubsetEnumerator, competing

__all__ = [
    "TableSignature",
    "signature_of_tree",
    "CseManager",
    "compatibility_groups",
    "derive_compatibility_from_parts",
    "join_compatible",
    "CseDefinition",
    "construct_cse",
    "estimate_cse_rows",
    "CandidateCse",
    "CandidateIdAllocator",
    "generate_candidates",
    "HeuristicConfig",
    "PruneTrace",
    "heuristic1_keep",
    "heuristic2_filter",
    "heuristic4_filter",
    "is_contained",
    "merge_benefit",
    "ConsumerSpec",
    "build_consumer_specs",
    "try_match_consumer",
    "SubsetEnumerator",
    "competing",
]
