"""Candidate CSE generation (paper §4.3, Algorithm 1).

For every join-compatible set of sharable expressions we start from one
*trivial* CSE per consumer and greedily merge the pair with the highest
merge benefit Δ (Heuristic 3) until no beneficial merge remains; leftover
trivial CSEs seed further rounds. Heuristics 1 and 2 run before merging,
Heuristic 4 (containment) runs across the candidates of *all* signature
buckets afterwards (the engine calls it).

With heuristics disabled ("no heuristics" mode of the paper's experiment
tables) a single candidate covering every consumer of each compatible set is
produced, reproducing the five candidates of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import OptimizerError
from ..obs import active_journal
from ..optimizer.cardinality import CardinalityEstimator
from ..optimizer.cost import CostModel
from ..optimizer.memo import BlockInfo, Group
from .construct import CseDefinition, construct_cse
from .heuristics import (
    PruneTrace,
    consumer_lower_bound,
    heuristic1_keep,
    heuristic2_filter,
    merge_benefit,
)


@dataclass
class CandidateCse:
    """A candidate: its definition plus engine-filled optimization state."""

    definition: CseDefinition
    #: Cost components (filled by the engine once the body is optimized):
    body_cost: float = 0.0  # C_E: optimal cost of evaluating the body
    write_cost: float = 0.0  # C_W
    read_cost: float = 0.0  # C_R per consumer
    #: Memo group id of the body's top group.
    body_top_gid: int = -1
    #: Memo group id of the (static) least common ancestor of all consumers.
    lca_gid: int = -1
    #: True when some consumer lives inside another candidate's body
    #: (stacked CSEs, §5.5) — the initial cost is then settled at the root.
    lifted_to_root: bool = False

    @property
    def cse_id(self) -> str:
        """The candidate's identifier (E1, E2, ...)."""
        return self.definition.cse_id

    @property
    def initial_cost(self) -> float:
        """C_E + C_W: charged once per used CSE (§5.2)."""
        return self.body_cost + self.write_cost

    def signature_wider_than(self, other: "CandidateCse") -> bool:
        """Whether this candidate references strictly more tables than
        ``other`` while covering all of its tables — the acyclic stacking
        order used for §5.5."""
        mine = self.definition.signature
        theirs = other.definition.signature
        return (
            mine.covers_tables_of(theirs)
            and mine.table_count > theirs.table_count
        )


class CandidateIdAllocator:
    """Hands out E1, E2, ... in generation order (as in the paper's figures)."""

    def __init__(self) -> None:
        self._next = 1

    def __call__(self) -> str:
        cse_id = f"E{self._next}"
        self._next += 1
        return cse_id


def generate_candidates(
    compatible_set: Sequence[Group],
    infos: Dict[str, BlockInfo],
    estimator: CardinalityEstimator,
    cost_model: CostModel,
    batch_cost: float,
    alpha: float,
    use_heuristics: bool,
    instance_allocator: Callable[[], int],
    id_allocator: Callable[[], str],
    trace: Optional[PruneTrace] = None,
) -> List[CseDefinition]:
    """Generate candidate CSEs for one join-compatible consumer set."""
    journal = active_journal()
    consumers = sorted(compatible_set, key=lambda g: g.gid)
    if len(consumers) < 2:
        return []

    def build(members: Sequence[Group], cse_id: Optional[str] = None) -> CseDefinition:
        return construct_cse(
            cse_id if cse_id is not None else "tmp",
            members,
            infos,
            instance_allocator,
            estimator,
        )

    def journal_candidate(definition: CseDefinition) -> CseDefinition:
        if journal.enabled:
            journal.event(
                "candidate",
                cse_id=definition.cse_id,
                signature=repr(definition.signature),
                consumers=[f"g{g.gid}" for g in definition.consumer_groups],
                est_rows=definition.est_rows,
            )
        return definition

    def journal_h1(members: Sequence[Group], passed: bool) -> None:
        if journal.enabled:
            journal.event(
                "h1",
                signature="set:" + ",".join(f"g{g.gid}" for g in members),
                lower_bound_sum=sum(
                    consumer_lower_bound(g) for g in members
                ),
                threshold=alpha * batch_cost,
                alpha=alpha,
                passed=passed,
            )

    if not use_heuristics:
        # One candidate covering all consumers of the compatible set.
        return [journal_candidate(build(consumers, id_allocator()))]

    # Heuristic 1 (second application; the engine applied it per signature
    # bucket before compatibility analysis).
    if not heuristic1_keep(consumers, batch_cost, alpha):
        journal_h1(consumers, passed=False)
        if trace is not None:
            trace.heuristic1.append(
                "set:" + ",".join(f"g{g.gid}" for g in consumers)
            )
        return []

    # Heuristic 2: exclude consumers whose results are too large to share.
    consumers = heuristic2_filter(consumers, cost_model, trace)
    if len(consumers) < 2:
        return []
    if not heuristic1_keep(consumers, batch_cost, alpha):
        journal_h1(consumers, passed=False)
        if trace is not None:
            trace.heuristic1.append(
                "set:" + ",".join(f"g{g.gid}" for g in consumers)
            )
        return []
    journal_h1(consumers, passed=True)

    # Algorithm 1: greedy merging driven by the benefit Δ (Heuristic 3).
    candidates: List[CseDefinition] = []
    remaining: List[Group] = list(consumers)
    while len(remaining) > 1:
        seed = remaining.pop(0)
        members: List[Group] = [seed]
        current = build(members)
        current_sources = [current]
        merged_any = False
        while remaining:
            best_delta = 0.0
            top_delta = float("-inf")
            best_index = -1
            best_merged: Optional[CseDefinition] = None
            for index, other in enumerate(remaining):
                other_def = build([other])
                try:
                    merged = build(members + [other])
                except OptimizerError:
                    continue
                delta = merge_benefit(
                    merged, current_sources + [other_def], cost_model
                )
                if delta > top_delta:
                    top_delta = delta
                if delta > best_delta:
                    best_delta = delta
                    best_index = index
                    best_merged = merged
            if best_merged is None:
                if remaining:
                    if trace is not None:
                        trace.heuristic3.append(
                            f"stop@{len(members)} members"
                        )
                    if journal.enabled:
                        journal.event(
                            "h3",
                            members=[f"g{g.gid}" for g in members],
                            delta=(
                                top_delta
                                if top_delta > float("-inf")
                                else 0.0
                            ),
                            merged=False,
                        )
                break
            members.append(remaining.pop(best_index))
            if journal.enabled:
                journal.event(
                    "h3",
                    members=[f"g{g.gid}" for g in members],
                    delta=best_delta,
                    merged=True,
                )
            current = best_merged
            current_sources = [current]
            merged_any = True
        if merged_any:
            final = journal_candidate(build(members, id_allocator()))
            candidates.append(final)
        # Un-merged seeds are dropped (a trivial CSE with one consumer is
        # never useful); the while loop retries with the rest.
    return candidates
