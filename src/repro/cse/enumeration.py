"""Candidate-set enumeration for multiple CSEs (paper §5.3).

With several candidates, optimizing once with all of them enabled can
prematurely prune plans (Example 11), so the optimizer re-runs with different
enabled subsets. Naively that is ``2^N − 1`` optimizations; the paper's
Propositions 5.4–5.6 prune the space using the *competing / independent*
relation over the candidates' least-common-ancestor groups (Definition 5.2):

* **Prop 5.4 / 5.5** — after optimizing with set ``S`` whose members ``T``
  are each independent of everything else in ``S``, skip every subset that
  differs from ``S`` only by dropping part of ``T``.
* **Prop 5.6** — if the returned plan used exactly ``S*``, that same plan is
  optimal for ``S*`` too: skip ``S*`` and re-apply Prop 5.5 as if ``S*`` had
  been optimized.

The :class:`SubsetEnumerator` yields subsets in descending size and consumes
result reports to prune what remains.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Optional, Sequence, Set

from ..optimizer.memo import Group, Memo
from .candidates import CandidateCse


def competing(first: CandidateCse, second: CandidateCse, memo: Memo) -> bool:
    """Definition 5.2: two candidates compete when one's LCA group is an
    ancestor (or descendant, or the same group) of the other's."""
    lca_a = first.lca_gid
    lca_b = second.lca_gid
    if lca_a == lca_b:
        return True
    group_a = memo.groups[lca_a]
    group_b = memo.groups[lca_b]
    return lca_b in memo.descendants(group_a) or lca_a in memo.descendants(group_b)


class SubsetEnumerator:
    """Yields candidate subsets per §5.3's overall procedure.

    Subsets are generated lazily in descending size (2^N of them in the
    worst case, so they are never materialized); pruning is recorded as
    exclusion predicates — interval rules ``used ⊆ S ⊆ optimized`` and
    Prop-5.5 records — checked as each subset is generated. ``max_optimizations``
    bounds the number of subsets ever issued.
    """

    def __init__(
        self,
        candidates: Sequence[CandidateCse],
        memo: Memo,
        max_optimizations: int = 128,
    ) -> None:
        self.candidates = list(candidates)
        self.memo = memo
        self.max_optimizations = max_optimizations
        ids = sorted(c.cse_id for c in self.candidates)
        self._by_id = {c.cse_id: c for c in self.candidates}
        if len(ids) <= 16:
            self._generator = (
                frozenset(combo)
                for size in range(len(ids), 0, -1)
                for combo in itertools.combinations(ids, size)
            )
        else:
            # Past ~16 candidates the subset lattice is hopeless even to
            # skip through lazily. The usage-profile search already finds
            # the global optimum with everything enabled (DESIGN.md), so the
            # curated sequence — the full set, then leave-one-out sets, then
            # singletons — serves only the ablation studies.
            full = frozenset(ids)
            curated: List[FrozenSet[str]] = [full]
            curated.extend(full - {cid} for cid in ids)
            curated.extend(frozenset([cid]) for cid in ids)
            self._generator = iter(curated)
        #: interval exclusions: skip S with lo ⊆ S ⊆ hi.
        self._intervals: List[tuple] = []
        #: Prop 5.5 records: (optimized, independent T, rest R).
        self._prop55: List[tuple] = []
        self._issued = 0

    def _excluded(self, subset: FrozenSet[str]) -> bool:
        for lo, hi in self._intervals:
            if lo <= subset <= hi:
                return True
        for optimized, independent, rest in self._prop55:
            if (
                subset < optimized
                and rest <= subset
                and subset & independent < independent
            ):
                return True
        return False

    # -- the competing/independent relation ---------------------------------

    def _independent_part(self, subset: FrozenSet[str]) -> FrozenSet[str]:
        """Members of ``subset`` independent of every other member (the set
        ``T`` of Prop 5.5)."""
        independent: Set[str] = set()
        for cid in subset:
            candidate = self._by_id[cid]
            if all(
                other == cid
                or not competing(candidate, self._by_id[other], self.memo)
                for other in subset
            ):
                independent.add(cid)
        return frozenset(independent)

    # -- enumeration protocol -------------------------------------------------

    def next_subset(self) -> Optional[FrozenSet[str]]:
        """The next subset to optimize with, or None when done."""
        if self._issued >= self.max_optimizations:
            return None
        for subset in self._generator:
            if self._excluded(subset):
                continue
            self._issued += 1
            return subset
        return None

    def report(self, optimized: FrozenSet[str], used: FrozenSet[str]) -> None:
        """Record that optimizing with ``optimized`` enabled returned a plan
        using exactly ``used``; prunes remaining subsets per Props 5.4-5.6.

        Beyond the propositions as stated, the *interval rule* applies: the
        plan found under ``optimized`` uses only ``used``, so the same plan
        remains available — and therefore optimal — under every ``S_i`` with
        ``used ⊆ S_i ⊆ optimized``."""
        used = used & optimized
        self._intervals.append((used, optimized))
        self._apply_prop_55(optimized)
        if used != optimized:
            # Prop 5.6: the plan is optimal for `used` as well.
            self._apply_prop_55(used)

    def _apply_prop_55(self, optimized: FrozenSet[str]) -> None:
        """Prop 5.5 (and 5.4 when R = ∅): after optimizing ``S = T ∪ R`` with
        every member of T independent of everything else in S, the subsets
        that differ from S only by dropping part of T are redundant."""
        independent = self._independent_part(optimized)
        if not independent:
            return
        rest = optimized - independent
        self._prop55.append((optimized, independent, rest))

    @property
    def issued(self) -> int:
        """How many subsets have been handed out."""
        return self._issued
