"""Table signatures (paper §3, Definition 3.1 and Figure 2).

A table signature ``S_e = [G_e; T_e]`` exists iff ``e`` is an SPJG
expression: ``G_e`` records whether ``e`` contains a group-by, ``T_e`` the
source tables. Signatures are the fast filter for detecting potentially
sharable expressions: *expressions with different table signatures cannot be
computed from a common covering subexpression*.

Two implementation notes:

* ``T_e`` is a **multiset** of base-table names (a sorted tuple). Definition
  3.1 says "set"; for queries without self-joins the two coincide, and the
  multiset keeps a self-join ``A ⋈ A`` from spuriously matching a single
  reference to ``A`` (see DESIGN.md).
* Delta tables (view maintenance, §6.4) contribute the distinguished name
  ``delta(<base>)``, exactly matching the paper's "we treat the delta table
  as a special table when generating table signatures".

Figure 2's rules, implemented by :func:`signature_of_tree` (and applied
incrementally, group-by-group, by the optimizer's memo):

=============== ================================================
Operator        Table signature
=============== ================================================
Table/View t    ``[F; {t}]``
Select σ(e)     ``S_e``                       if ``G_e = F``
Project π(e)    ``S_e``   (transparent; see §3 example)
Join e1 ⋈ e2    ``[F; T_e1 ∪ T_e2]``          if ``G_e1 = G_e2 = F``
GroupBy γ(e)    ``[T; T_e]``                  if ``G_e = F``
(other cases)   no signature (``None``)
=============== ================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..expr.expressions import TableRef
from ..logical.operators import (
    Get,
    GroupBy,
    Join,
    LogicalOperator,
    Project,
    Select,
    Spool,
)


@dataclass(frozen=True, order=True)
class TableSignature:
    """``[G; T]``: group-by flag plus a sorted multiset of table names."""

    has_groupby: bool
    tables: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tables", tuple(sorted(self.tables)))

    @classmethod
    def of_tables(
        cls, table_refs: Iterable[TableRef], has_groupby: bool = False
    ) -> "TableSignature":
        """Signature from table instances (uses signature names)."""
        return cls(
            has_groupby=has_groupby,
            tables=tuple(sorted(t.signature_name for t in table_refs)),
        )

    @property
    def table_count(self) -> int:
        """Number of table references (multiset size)."""
        return len(self.tables)

    def joined_with(self, other: "TableSignature") -> Optional["TableSignature"]:
        """Figure 2's join rule: defined only when neither side has a γ."""
        if self.has_groupby or other.has_groupby:
            return None
        return TableSignature(False, self.tables + other.tables)

    def grouped(self) -> Optional["TableSignature"]:
        """Figure 2's group-by rule: defined only when there is no γ yet."""
        if self.has_groupby:
            return None
        return TableSignature(True, self.tables)

    def covers_tables_of(self, other: "TableSignature") -> bool:
        """Multiset inclusion of ``other``'s tables in ours (containment
        checking, Def 4.2, first condition)."""
        remaining = list(self.tables)
        for name in other.tables:
            try:
                remaining.remove(name)
            except ValueError:
                return False
        return True

    def __repr__(self) -> str:
        flag = "T" if self.has_groupby else "F"
        return f"[{flag}; {{{', '.join(self.tables)}}}]"


def signature_of_tree(tree: LogicalOperator) -> Optional[TableSignature]:
    """Compute the table signature of a logical operator tree by applying
    Figure 2's rules in post order. Returns ``None`` where Figure 2 says the
    signature does not exist."""
    if isinstance(tree, Get):
        return TableSignature(False, (tree.table_ref.signature_name,))
    if isinstance(tree, Select):
        child = signature_of_tree(tree.children()[0])
        if child is None or child.has_groupby:
            return None
        return child
    if isinstance(tree, Project):
        # Figure 2 lists the Project rule with a G_e = F guard, but §3's own
        # example assigns π γ(σ(A) ⋈ σ(B)) the signature [T; {A, B}]; a
        # projection cannot change what a covering subexpression could
        # compute, so it is signature-transparent.
        return signature_of_tree(tree.children()[0])
    if isinstance(tree, Join):
        left = signature_of_tree(tree.left)
        right = signature_of_tree(tree.right)
        if left is None or right is None:
            return None
        return left.joined_with(right)
    if isinstance(tree, GroupBy):
        child = signature_of_tree(tree.child)
        if child is None:
            return None
        return child.grouped()
    if isinstance(tree, Spool):
        return signature_of_tree(tree.child)
    return None
