"""Join compatibility (paper §4.1, Definition 4.1).

Two SPJ expressions over the same set of tables are *join compatible* when
the equijoin graph built from the **intersection of their column equivalence
classes** is connected. Join-compatible expressions can share a covering
subexpression without resorting to Cartesian products.

Because each consumer references its own table *instances*, classes are first
mapped into a common *slot space*: slot ``(name, k)`` is the k-th occurrence
of base table ``name`` among the expression's instances (sorted). For
self-join-free queries — every workload in the paper — the mapping is exact;
with self-joins it is the documented greedy positional assignment.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..expr.expressions import ColumnRef, TableRef
from ..expr.predicates import EquivalenceClasses
from ..optimizer.memo import BlockInfo, Group

Slot = Tuple[str, int]
SlotColumn = Tuple[str, int, str]  # (table name, occurrence, column)


def slot_assignment(tables: Iterable[TableRef]) -> Dict[TableRef, Slot]:
    """Assign each table instance a (name, occurrence) slot."""
    assignment: Dict[TableRef, Slot] = {}
    counters: Dict[str, int] = {}
    for table in sorted(tables):
        name = table.signature_name
        occurrence = counters.get(name, 0)
        counters[name] = occurrence + 1
        assignment[table] = (name, occurrence)
    return assignment


def slot_classes(
    tables: FrozenSet[TableRef], classes: List[FrozenSet[ColumnRef]]
) -> EquivalenceClasses:
    """Map instance-level equivalence classes into slot space."""
    assignment = slot_assignment(tables)
    result = EquivalenceClasses()
    for cls in classes:
        members = sorted(cls, key=repr)
        mapped = [
            (assignment[m.table_ref][0], assignment[m.table_ref][1], m.column)
            for m in members
            if m.table_ref in assignment
        ]
        if len(mapped) < 2:
            continue
        first = mapped[0]
        result.add(first)
        for member in mapped[1:]:
            result.add_equality(first, member)
    return result


def consumer_slot_classes(group: Group, info: BlockInfo) -> EquivalenceClasses:
    """The slot-space equivalence classes of a consumer group's underlying
    SPJ expression (its block's classes restricted to the group's tables)."""
    return slot_classes(group.tables, info.classes_within(group.tables))


def _graph_connected(slots: Set[Slot], classes: EquivalenceClasses) -> bool:
    """Connectivity of the equijoin graph over ``slots`` whose edges come
    from ``classes`` (an edge wherever a class holds columns of two slots)."""
    if len(slots) <= 1:
        return True
    edges: Set[FrozenSet[Slot]] = set()
    for cls in classes.classes():
        touched = sorted({(m[0], m[1]) for m in cls})
        for i, a in enumerate(touched):
            for b in touched[i + 1:]:
                edges.add(frozenset((a, b)))
    start = next(iter(slots))
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for edge in edges:
            if current in edge:
                other = next(iter(edge - {current}))
                if other in slots and other not in seen:
                    seen.add(other)
                    frontier.append(other)
    return seen == slots


def join_compatible_classes(
    class_sets: Sequence[EquivalenceClasses], slots: Set[Slot]
) -> Tuple[bool, EquivalenceClasses]:
    """Intersect slot-space class sets and test equijoin-graph connectivity.

    Returns ``(compatible, intersection)``.
    """
    if not class_sets:
        return True, EquivalenceClasses()
    intersection = class_sets[0]
    for other in class_sets[1:]:
        intersection = intersection.intersect(other)
    return _graph_connected(slots, intersection), intersection


def join_compatible(
    group_a: Group,
    group_b: Group,
    info_a: BlockInfo,
    info_b: BlockInfo,
) -> bool:
    """Definition 4.1 for two consumer groups (same table signature)."""
    slots = set(slot_assignment(group_a.tables).values())
    slots_b = set(slot_assignment(group_b.tables).values())
    if slots != slots_b:
        return False
    classes_a = consumer_slot_classes(group_a, info_a)
    classes_b = consumer_slot_classes(group_b, info_b)
    compatible, _ = join_compatible_classes([classes_a, classes_b], slots)
    return compatible


def derive_compatibility_from_parts(
    part_results: Sequence[Tuple[Set[Slot], bool]], all_slots: Set[Slot]
) -> bool:
    """The subexpression shortcut of Example 3: if join compatibility is
    already known for overlapping sub-slot-sets, the union of their (connected)
    equijoin graphs covering all slots proves compatibility of the whole.

    ``part_results`` holds ``(slots of the part, compatible?)`` pairs. Returns
    True when the compatible parts connect all slots; False means *unknown*
    (fall back to the basic method), matching the paper's fallback rule.
    """
    compatible_parts = [slots for slots, ok in part_results if ok]
    covered: Set[Slot] = set()
    for slots in compatible_parts:
        covered |= slots
    if covered != all_slots:
        return False
    # Union the parts as hyper-edges; check connectivity of the union graph.
    remaining = [set(slots) for slots in compatible_parts]
    if not remaining:
        return False
    component = remaining.pop(0)
    changed = True
    while changed:
        changed = False
        for part in list(remaining):
            if part & component:
                component |= part
                remaining.remove(part)
                changed = True
    return component == all_slots


def compatibility_groups(
    groups: Sequence[Group], infos: Dict[str, BlockInfo]
) -> List[List[Group]]:
    """Partition one signature bucket into join-compatible sets (§4.2).

    Members of a set are mutually join compatible and reference pairwise
    disjoint table instances (so they can all appear in one final plan).
    Greedy clique cover, deterministic by group id.
    """
    clusters: List[List[Group]] = []
    for group in sorted(groups, key=lambda g: g.gid):
        info = infos[group.block.name] if group.block is not None else None
        placed = False
        for cluster in clusters:
            ok = True
            for member in cluster:
                if member.tables & group.tables:
                    ok = False
                    break
                if (
                    member.kind == "agg"
                    and group.kind == "agg"
                    and member.block is group.block
                ):
                    # Two pre-aggregations of the same block can never appear
                    # in one plan (the memo joins at most one pre-aggregated
                    # input), so they cannot share a spool.
                    ok = False
                    break
                member_info = infos[member.block.name]
                if info is None or not join_compatible(
                    member, group, member_info, info
                ):
                    ok = False
                    break
            if ok:
                cluster.append(group)
                placed = True
                break
        if not placed:
            clusters.append([group])
    return [c for c in clusters if len(c) >= 2]
