"""The CSE manager (paper §2.2, Figure 1).

During normal optimization, every memo group with a table signature is
registered here (Step 1). The manager maintains a hash table from signatures
to the groups carrying them. When the CSE optimization phase begins, the
manager reports the signature buckets referencing two or more groups — the
*potentially sharable* expressions (first half of Step 2).

The overhead of registration is one dictionary insert per group, matching the
paper's observation that the mechanism is too cheap to measure when no
sharing exists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..obs import active_journal
from ..optimizer.memo import Group
from .signature import TableSignature


class CseManager:
    """Hash table from table signatures to registered memo groups."""

    def __init__(self) -> None:
        self._buckets: Dict[TableSignature, List[Group]] = {}
        self.registrations = 0
        #: candidate id -> gids of its view-matched consumer groups. Filled
        #: after matching (Step 2) and consumed by the optimizer's §5.4
        #: history cache to compute per-group candidate footprints.
        self._consumers: Dict[str, Set[int]] = {}

    def register(self, group: Group) -> None:
        """Record one group under its signature (no-op for signature-less
        groups)."""
        if group.signature is None:
            return
        self.registrations += 1
        self._buckets.setdefault(group.signature, []).append(group)

    def register_all(self, groups: Iterable[Group]) -> None:
        """Register every group in creation order."""
        for group in groups:
            self.register(group)

    def bucket(self, signature: TableSignature) -> List[Group]:
        """The groups registered under one signature."""
        return list(self._buckets.get(signature, []))

    def sharable_buckets(self) -> List[Tuple[TableSignature, List[Group]]]:
        """Signature buckets referencing at least two distinct groups with
        pairwise-disjoint table instances — only such groups can co-occur in
        one final plan and therefore share a computed result."""
        journal = active_journal()
        result: List[Tuple[TableSignature, List[Group]]] = []
        for signature, groups in sorted(
            self._buckets.items(), key=lambda kv: kv[0]
        ):
            if len(groups) < 2:
                continue
            sharable = self._has_disjoint_pair(groups)
            journal.event(
                "bucket",
                signature=repr(signature),
                groups=len(groups),
                sharable=sharable,
            )
            if sharable:
                result.append((signature, list(groups)))
        return result

    @staticmethod
    def _has_disjoint_pair(groups: List[Group]) -> bool:
        for i, first in enumerate(groups):
            for second in groups[i + 1:]:
                if not (first.tables & second.tables):
                    return True
        return False

    # -- consumer registry (§5.4 footprint input) ---------------------------

    def record_consumers(self, cse_id: str, gids: Iterable[int]) -> None:
        """Record the consumer-group gids a candidate can substitute into
        (query-side and stacked body-side alike)."""
        self._consumers.setdefault(cse_id, set()).update(gids)

    def consumer_map(self) -> Dict[str, Set[int]]:
        """Candidate id -> consumer gids, as recorded (copies the sets)."""
        return {cid: set(gids) for cid, gids in self._consumers.items()}

    @property
    def bucket_count(self) -> int:
        """Number of distinct signatures seen."""
        return len(self._buckets)

    def clear(self) -> None:
        """Forget all registrations."""
        self._buckets.clear()
        self.registrations = 0
        self._consumers.clear()
