"""Cost-based candidate pruning heuristics (paper §4.3).

All four heuristics exploit the cost bounds the memo accumulated during
normal optimization; none requires optimizing a candidate's body:

* **Heuristic 1** ("don't bother with cheap expressions"): discard a
  candidate when its consumers' summed lower cost bounds are less than
  ``α`` of the overall query cost (α = 10%).
* **Heuristic 2** ("exclude consumers with huge results"): drop a consumer
  when reading a shared result would cost more than recomputing it, even
  under the most favourable cost split.
* **Heuristic 3** ("merge only when beneficial"): the merge-benefit Δ used by
  Algorithm 1 — merge two candidates only when the merged CSE's total cost
  (evaluation + write + all reads) undercuts using the sources separately.
* **Heuristic 4** ("containment checking"): discard a candidate contained by
  another whose result is not much larger (β = 90%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import active_journal, active_registry
from ..optimizer.cost import CostModel
from ..optimizer.memo import Group, Memo
from .construct import CseDefinition


@dataclass
class HeuristicConfig:
    """Thresholds for the pruning heuristics (paper defaults)."""

    alpha: float = 0.10
    beta: float = 0.90


@dataclass
class PruneTrace:
    """Records which heuristic removed what — used by the benchmarks to
    reproduce the paper's Figure 6/7 narratives and by the tests."""

    heuristic1: List[str] = None
    heuristic2: List[str] = None
    heuristic3: List[str] = None
    heuristic4: List[str] = None

    def __post_init__(self) -> None:
        self.heuristic1 = self.heuristic1 or []
        self.heuristic2 = self.heuristic2 or []
        self.heuristic3 = self.heuristic3 or []
        self.heuristic4 = self.heuristic4 or []


def consumer_lower_bound(group: Group) -> float:
    """The consumer's lower cost bound (its optimal cost after normal
    optimization; see DESIGN.md on bounds in an exhaustive memo)."""
    return group.lower_bound if group.lower_bound is not None else 0.0


def consumer_upper_bound(group: Group) -> float:
    """The consumer's upper cost bound (see DESIGN.md)."""
    return group.upper_bound if group.upper_bound is not None else float("inf")


def heuristic1_keep(
    consumers: Sequence[Group], batch_cost: float, alpha: float
) -> bool:
    """Heuristic 1: keep only when Σ lower bounds ≥ α × C_Q."""
    total = sum(consumer_lower_bound(g) for g in consumers)
    return total >= alpha * batch_cost


def heuristic2_filter(
    consumers: Sequence[Group],
    cost_model: CostModel,
    trace: Optional[PruneTrace] = None,
) -> List[Group]:
    """Heuristic 2: drop consumers for which even the best-case shared plan
    (evaluation and write cost split across all N consumers) loses to
    recomputing from scratch:

        C_upper(G_i) < C_R_i + (C_upper(G_i) + C_W_i) / N
    """
    n = len(consumers)
    if n == 0:
        return []
    journal = active_journal()
    kept: List[Group] = []
    for group in consumers:
        upper = consumer_upper_bound(group)
        rows = group.est_rows
        width = group.row_width
        c_w = cost_model.spool_write(rows, width)
        c_r = cost_model.spool_read(rows, width)
        keep_cost = c_r + (upper + c_w) / n
        dropped = upper < keep_cost
        if journal.enabled:
            journal.event(
                "h2",
                consumer=f"g{group.gid}",
                upper=upper,
                keep_cost=keep_cost,
                dropped=dropped,
            )
        if dropped:
            if trace is not None:
                trace.heuristic2.append(f"g{group.gid}")
            active_registry().counter("cse.heuristic2_consumer_drops")
            continue
        kept.append(group)
    return kept


def cse_usage_cost(
    definition: CseDefinition, cost_model: CostModel
) -> Tuple[float, float, float]:
    """(C_E_lower, C_W, C_R) for a constructed candidate.

    ``C_E_lower`` approximates the evaluation cost per §4.3.3: the highest of
    the consumers' lowest cost bounds (evaluating the covering expression can
    be no cheaper than any expression it covers).
    """
    c_e_lower = max(
        (consumer_lower_bound(group) for group in definition.consumer_groups),
        default=0.0,
    )
    c_w = cost_model.spool_write(definition.est_rows, definition.row_width)
    c_r = cost_model.spool_read(definition.est_rows, definition.row_width)
    return c_e_lower, c_w, c_r


def candidate_total_cost(
    definition: CseDefinition, cost_model: CostModel
) -> float:
    """The candidate's contribution to the final query per §4.3.3:
    ``C_E + C_W + N × C_R`` (with the lower-bound approximation of C_E)."""
    c_e, c_w, c_r = cse_usage_cost(definition, cost_model)
    return c_e + c_w + len(definition.consumer_groups) * c_r


def merge_benefit(
    merged: CseDefinition,
    sources: Sequence[CseDefinition],
    cost_model: CostModel,
) -> float:
    """Heuristic 3's Δ: cost of using the source CSEs separately minus the
    cost of using the merged CSE. Merge only when Δ > 0."""
    active_registry().counter("cse.merge_benefit_evaluations")
    separate = sum(candidate_total_cost(s, cost_model) for s in sources)
    return separate - candidate_total_cost(merged, cost_model)


def is_contained(
    inner: CseDefinition, outer: CseDefinition, memo: Memo
) -> bool:
    """Containment (Definition 4.2): the inner candidate's input tables are a
    (multiset) subset of the outer's, and each inner consumer group is a
    descendant of some outer consumer group in the memo DAG."""
    if inner.cse_id == outer.cse_id:
        return False
    if not outer.signature.covers_tables_of(inner.signature):
        return False
    outer_desc = set()
    for group in outer.consumer_groups:
        outer_desc |= memo.descendants(group)
    return all(group.gid in outer_desc for group in inner.consumer_groups)


def heuristic4_filter(
    candidates: Sequence[CseDefinition],
    memo: Memo,
    beta: float,
    trace: Optional[PruneTrace] = None,
) -> List[CseDefinition]:
    """Heuristic 4: discard a contained candidate E_c when its result size
    exceeds β × the containing candidate's (S_c > β × S_p): the wider
    candidate shares more computation *and* is not meaningfully larger."""
    registry = active_registry()
    journal = active_journal()
    kept: List[CseDefinition] = []
    for inner in candidates:
        pruned = False
        for outer in candidates:
            if outer is inner:
                continue
            registry.counter("cse.containment_checks")
            if is_contained(inner, outer, memo):
                contained_prunes = inner.est_bytes > beta * outer.est_bytes
                if journal.enabled:
                    journal.event(
                        "h4",
                        inner=inner.cse_id,
                        outer=outer.cse_id,
                        inner_bytes=inner.est_bytes,
                        outer_bytes=outer.est_bytes,
                        beta=beta,
                        pruned=contained_prunes,
                    )
                if contained_prunes:
                    pruned = True
                    break
        if pruned:
            if trace is not None:
                trace.heuristic4.append(inner.cse_id)
            registry.counter("cse.containment_prunes")
            continue
        kept.append(inner)
    return kept
