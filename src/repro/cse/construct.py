"""Covering-subexpression construction (paper §4.2).

Given a set of join-compatible consumer groups sharing one table signature,
a covering subexpression is built with the paper's six steps:

1. an N-ary join with equijoin predicates from the **intersection** of the
   consumers' equivalence classes;
2. each consumer's selection predicate *simplified* by deleting conjuncts
   already implied by the common join predicate;
3. a *covering predicate* from the OR of the simplified predicates;
4. if the consumers aggregate, a group-by whose keys are the union of all
   consumers' grouping columns plus every column the consumers' residual
   predicates reference, with the union of their aggregate expressions;
5. a projection with every column/aggregate any consumer requires;
6. a spool on top (the work table the executor materializes).

**Covering-predicate simplification.** A covering predicate only needs to be
*implied by* each consumer's predicate (it may admit extra rows — consumers
re-filter with their residuals). We therefore weaken the OR of step 3 into a
conjunction of (a) conjuncts common to all consumers and (b) per-column range
hulls. For the paper's Example 1 batch this reproduces E5's predicate
verbatim: the shared ``o_orderdate < '1996-07-01'`` is factored out and the
three ``c_nationkey`` ranges merge into ``c_nationkey > 0 and
c_nationkey < 25``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import OptimizerError
from ..expr.expressions import (
    AggExpr,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    TableRef,
)
from ..expr.predicates import (
    EquivalenceClasses,
    implied_by_equalities,
)
from ..logical.blocks import OutputColumn, QueryBlock
from ..optimizer.cardinality import CardinalityEstimator, cardenas
from ..optimizer.memo import BlockInfo, Group
from .compatibility import join_compatible_classes, slot_assignment, slot_classes
from .signature import TableSignature


@dataclass
class CseDefinition:
    """A constructed covering subexpression (before body optimization)."""

    cse_id: str
    signature: TableSignature
    block: QueryBlock
    outputs: Tuple[OutputColumn, ...]
    #: The groups this CSE was constructed to cover (its potential consumers).
    consumer_groups: List[Group]
    #: Equality conjuncts of the intersected equivalence classes (step 1).
    joint_equalities: Tuple[Expr, ...]
    joint_classes: EquivalenceClasses
    #: Conjuncts of the (weakened) covering predicate (step 3), body space.
    covering_conjuncts: Tuple[Expr, ...]
    #: consumer index -> its table map (consumer instance -> body instance).
    table_maps: List[Dict[TableRef, TableRef]] = field(default_factory=list)
    est_rows: float = 0.0
    row_width: int = 0

    @property
    def consumer_gids(self) -> Tuple[int, ...]:
        """Memo group ids of the covered consumers."""
        return tuple(g.gid for g in self.consumer_groups)

    @property
    def has_groupby(self) -> bool:
        """Whether the CSE aggregates (signature G flag)."""
        return self.signature.has_groupby

    @property
    def est_bytes(self) -> float:
        """Estimated result size in bytes."""
        return self.est_rows * max(self.row_width, 1)

    @property
    def group_keys(self) -> Tuple[ColumnRef, ...]:
        """The covering group-by keys (step 4)."""
        return self.block.group_keys

    @property
    def aggregates(self) -> Tuple[AggExpr, ...]:
        """The covering aggregate expressions (step 4)."""
        return self.block.aggregates

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSE({self.cse_id} {self.signature!r} consumers={self.consumer_gids})"


def remap_expr(expr: Expr, table_map: Dict[TableRef, TableRef]) -> Expr:
    """Rewrite every column reference per ``table_map``."""
    mapping: Dict[Expr, Expr] = {}
    for col in expr.columns():
        target = table_map.get(col.table_ref)
        if target is not None:
            mapping[col] = ColumnRef(target, col.column, col.data_type)
    return expr.substitute(mapping)


def consumer_conjuncts(group: Group, info: BlockInfo) -> List[Expr]:
    """The consumer's full predicate over its tables: equality conjuncts
    regenerated from its equivalence classes plus every applicable
    non-equality conjunct (the normalized SPJ form of §4.1)."""
    classes = EquivalenceClasses()
    for cls in info.classes_within(group.tables):
        members = sorted(cls, key=repr)
        for member in members[1:]:
            classes.add_equality(members[0], member)
    conjuncts: List[Expr] = list(classes.equality_conjuncts())
    conjuncts.extend(info.noneq_within(group.tables))
    return conjuncts


def consumer_table_map(
    group: Group, body_by_slot: Dict[Tuple[str, int], TableRef]
) -> Dict[TableRef, TableRef]:
    """Map a consumer's table instances onto the CSE body's instances via
    the shared slot assignment."""
    assignment = slot_assignment(group.tables)
    return {tref: body_by_slot[slot] for tref, slot in assignment.items()}


# ---------------------------------------------------------------------------
# Covering-predicate weakening
# ---------------------------------------------------------------------------


def _range_bounds(
    conjuncts: Sequence[Expr],
) -> Dict[ColumnRef, Tuple[Optional[float], bool, Optional[float], bool]]:
    """Per-column (low, low_inclusive, high, high_inclusive) implied by
    ``conjuncts``; only numeric/date literals participate."""
    bounds: Dict[ColumnRef, Tuple[Optional[float], bool, Optional[float], bool]] = {}
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison):
            continue
        normalized = conjunct.normalized()
        if not (
            isinstance(normalized.left, ColumnRef)
            and isinstance(normalized.right, Literal)
        ):
            continue
        value = normalized.right.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        column = normalized.left
        low, low_inc, high, high_inc = bounds.get(
            column, (None, True, None, True)
        )
        op = normalized.op
        if op in (ComparisonOp.GT, ComparisonOp.GE):
            inclusive = op is ComparisonOp.GE
            if low is None or value > low or (value == low and not inclusive):
                low, low_inc = float(value), inclusive
        elif op in (ComparisonOp.LT, ComparisonOp.LE):
            inclusive = op is ComparisonOp.LE
            if high is None or value < high or (value == high and not inclusive):
                high, high_inc = float(value), inclusive
        elif op is ComparisonOp.EQ:
            if low is None or value > low:
                low, low_inc = float(value), True
            if high is None or value < high:
                high, high_inc = float(value), True
        bounds[column] = (low, low_inc, high, high_inc)
    return bounds


def weakened_covering(
    residual_sets: Sequence[Sequence[Expr]],
) -> Tuple[List[Expr], List[List[Expr]]]:
    """Weaken ``OR(AND(residual_i))`` into a list of covering conjuncts.

    Returns ``(covering_conjuncts, residuals)`` where ``residuals[i]`` is
    consumer i's compensation predicate (its conjuncts minus those common to
    every consumer). Soundness: each consumer's predicate implies the
    covering conjuncts, so the CSE contains every row any consumer needs.
    """
    if not residual_sets:
        return [], []
    # (a) conjuncts present in every consumer's simplified predicate.
    commons: List[Expr] = []
    first = residual_sets[0]
    for conjunct in first:
        if all(conjunct in other for other in residual_sets[1:]):
            if conjunct not in commons:
                commons.append(conjunct)
    residuals = [
        [c for c in conjuncts if c not in commons] for conjuncts in residual_sets
    ]
    covering: List[Expr] = list(commons)
    # (b) per-column range hulls across the remaining disjuncts.
    if all(residuals):
        per_consumer_bounds = [_range_bounds(r) for r in residuals]
        shared_columns = set(per_consumer_bounds[0])
        for bounds in per_consumer_bounds[1:]:
            shared_columns &= set(bounds)
        for column in sorted(shared_columns, key=repr):
            lows = [b[column][0] for b in per_consumer_bounds]
            highs = [b[column][2] for b in per_consumer_bounds]
            if all(l is not None for l in lows):
                hull_low = min(lows)
                inclusive = any(
                    b[column][1] for b in per_consumer_bounds
                    if b[column][0] == hull_low
                )
                op = ComparisonOp.GE if inclusive else ComparisonOp.GT
                covering.append(
                    Comparison(op, column, _hull_literal(hull_low, column))
                )
            if all(h is not None for h in highs):
                hull_high = max(highs)
                inclusive = any(
                    b[column][3] for b in per_consumer_bounds
                    if b[column][2] == hull_high
                )
                op = ComparisonOp.LE if inclusive else ComparisonOp.LT
                covering.append(
                    Comparison(op, column, _hull_literal(hull_high, column))
                )
    return covering, residuals


def _hull_literal(value: float, column: ColumnRef) -> Literal:
    from ..types import DataType

    if column.data_type in (DataType.INT, DataType.DATE):
        if float(value).is_integer():
            return Literal(int(value), column.data_type)
    return Literal(float(value), DataType.FLOAT)


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def construct_cse(
    cse_id: str,
    consumers: Sequence[Group],
    infos: Dict[str, BlockInfo],
    instance_allocator: Callable[[], int],
    estimator: Optional[CardinalityEstimator] = None,
) -> CseDefinition:
    """Build a CSE covering ``consumers`` (paper §4.2 steps 1-6)."""
    if not consumers:
        raise OptimizerError("cannot construct a CSE with no consumers")
    signature = consumers[0].signature
    if signature is None:
        raise OptimizerError("consumer group has no table signature")
    for group in consumers[1:]:
        if group.signature != signature:
            raise OptimizerError(f"consumers of {cse_id} have mismatched signatures")

    # Fresh body instances, one per slot of the shared signature.
    sample_assignment = slot_assignment(consumers[0].tables)
    sample_by_slot = {slot: tref for tref, slot in sample_assignment.items()}
    slot_order = sorted(sample_by_slot)
    body_by_slot: Dict[Tuple[str, int], TableRef] = {}
    for slot in slot_order:
        sample = sample_by_slot[slot]
        body_by_slot[slot] = TableRef(
            table=sample.table,
            instance=instance_allocator(),
            alias=f"{cse_id}_{slot[0]}{slot[1]}",
            is_delta=sample.is_delta,
            storage_name=sample.storage_name,
        )

    table_maps: List[Dict[TableRef, TableRef]] = [
        consumer_table_map(group, body_by_slot) for group in consumers
    ]

    # Verify join compatibility (Def 4.1) before constructing anything.
    compatible, _ = join_compatible_classes(
        [
            slot_classes(
                group.tables, infos[group.block.name].classes_within(group.tables)
            )
            for group in consumers
        ],
        set(slot_order),
    )
    if not compatible:
        raise OptimizerError(f"consumers of {cse_id} are not join compatible")

    # Step 1: intersect equivalence classes in body column space.
    per_consumer_conjuncts: List[List[Expr]] = []
    per_consumer_classes: List[EquivalenceClasses] = []
    for group, table_map in zip(consumers, table_maps):
        info = infos[group.block.name]
        mapped = [
            remap_expr(c, table_map) for c in consumer_conjuncts(group, info)
        ]
        per_consumer_conjuncts.append(mapped)
        per_consumer_classes.append(EquivalenceClasses.from_conjuncts(mapped))
    joint = per_consumer_classes[0]
    for other in per_consumer_classes[1:]:
        joint = joint.intersect(other)
    join_conjuncts = joint.equality_conjuncts()

    # Step 2: simplify each consumer's predicate against the joint classes.
    simplified: List[List[Expr]] = [
        [c for c in conjuncts if not implied_by_equalities(c, joint)]
        for conjuncts in per_consumer_conjuncts
    ]

    # Step 3: the (weakened) covering predicate.
    covering_conjuncts, residuals = weakened_covering(simplified)

    body_conjuncts: List[Expr] = list(join_conjuncts) + list(covering_conjuncts)

    # Columns the per-consumer residuals reference — needed in the output (and
    # in the grouping keys for aggregated CSEs) so compensation can run.
    residual_columns: Set[ColumnRef] = set()
    for residual in residuals:
        for conjunct in residual:
            residual_columns.update(conjunct.columns())

    outputs: List[OutputColumn] = []
    group_keys: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[AggExpr, ...] = ()

    if signature.has_groupby:
        # Step 4: keys = union of consumer keys + residual columns.
        keys: Set[ColumnRef] = set(residual_columns)
        aggs: List[AggExpr] = []
        for group, table_map in zip(consumers, table_maps):
            for key in group.agg_keys:
                mapped_key = remap_expr(key, table_map)
                assert isinstance(mapped_key, ColumnRef)
                keys.add(mapped_key)
            for out in group.agg_outs:
                if not isinstance(out, AggExpr):
                    raise OptimizerError(
                        f"consumer aggregate output {out!r} is not an aggregate"
                    )
                mapped_out = remap_expr(out, table_map)
                assert isinstance(mapped_out, AggExpr)
                if mapped_out not in aggs:
                    aggs.append(mapped_out)
        group_keys = tuple(sorted(keys, key=repr))
        aggregates = tuple(aggs)
        # Step 5: outputs = keys + aggregates.
        for i, key in enumerate(group_keys):
            outputs.append(OutputColumn(name=f"k{i}", expr=key))
        for i, agg in enumerate(aggregates):
            outputs.append(OutputColumn(name=f"a{i}", expr=agg))
    else:
        # Step 5 (SPJ case): union of columns any consumer requires.
        needed: Set[ColumnRef] = set(residual_columns)
        for group, table_map in zip(consumers, table_maps):
            for expr in group.required_outputs:
                mapped = remap_expr(expr, table_map)
                needed.update(mapped.columns())
        for i, col in enumerate(sorted(needed, key=repr)):
            outputs.append(OutputColumn(name=f"c{i}", expr=col))

    block = QueryBlock(
        name=f"__cse_{cse_id}",
        tables=tuple(body_by_slot[slot] for slot in slot_order),
        conjuncts=tuple(body_conjuncts),
        output=tuple(outputs),
        group_keys=group_keys,
        aggregates=aggregates,
    )

    definition = CseDefinition(
        cse_id=cse_id,
        signature=signature,
        block=block,
        outputs=tuple(outputs),
        consumer_groups=list(consumers),
        joint_equalities=tuple(join_conjuncts),
        joint_classes=joint,
        covering_conjuncts=tuple(covering_conjuncts),
        table_maps=table_maps,
    )
    if estimator is not None:
        definition.est_rows = estimate_cse_rows(definition, estimator)
        definition.row_width = estimator.width_of(
            [o.expr for o in definition.outputs]
        )
    return definition


def estimate_cse_rows(
    definition: CseDefinition, estimator: CardinalityEstimator
) -> float:
    """Estimate the CSE result cardinality without optimizing its body:
    base rows × class factors × covering selectivity, then Cardenas over the
    grouping keys for aggregated CSEs."""
    block = definition.block
    info = BlockInfo(block)
    rows = 1.0
    item_rows: Dict[object, float] = {}
    for table in block.tables:
        base = estimator.table_rows(table)
        for conjunct in info.local_conjuncts(table):
            base *= estimator.selectivity(conjunct)
        item_rows[table] = max(base, 1.0)
        rows *= item_rows[table]
    for cls in info.classes_within(block.table_set):
        rows *= estimator.class_factor_for_join(
            cls, item_rows, frozenset(block.tables)
        )
    for conjunct in info.noneq:
        if len(conjunct.tables()) >= 2:
            rows *= estimator.selectivity(conjunct)
    rows = max(rows, 1.0)
    if not definition.has_groupby:
        return rows
    domain = 1.0
    representatives = []
    for key in sorted(definition.block.group_keys, key=repr):
        if any(
            definition.joint_classes.same_class(key, kept)
            or info.classes.same_class(key, kept)
            for kept in representatives
        ):
            continue
        representatives.append(key)
        domain *= max(min(estimator.column_ndv(key), rows), 1.0)
    return cardenas(domain, rows)
