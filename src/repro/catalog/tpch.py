"""Deterministic synthetic TPC-H database generator.

The paper evaluates against a 1 GB TPC-H database (scale factor 1). We cannot
ship or regenerate the official ``dbgen`` data, so this module builds a
synthetic equivalent: all eight TPC-H tables with the official key structure,
cardinality ratios (customer : orders : lineitem = 1 : 10 : ~40), realistic
date ranges, market segments, and part types. Generation is fully
deterministic for a given ``(scale_factor, seed)`` pair.

One deliberate deviation: the paper's query ``Q4`` (§6.2) selects
``p_availqty`` from ``part`` (official TPC-H keeps ``ps_availqty`` in
``partsupp``); we add ``p_availqty`` to ``part`` so the paper's queries run
verbatim. ``partsupp`` keeps its own ``ps_availqty`` as well.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..storage.database import Database
from ..types import DataType, date_to_int
from .schema import ColumnSchema, IndexSchema, TableSchema

#: Base cardinalities at scale factor 1.0 (official TPC-H values; lineitem is
#: derived from orders with 1..7 lines per order, averaging 4).
BASE_CARDINALITIES = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "part": 200_000,
    "partsupp": 800_000,
    "customer": 150_000,
    "orders": 1_500_000,
}

REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]

#: region of each nation, by nation key (official TPC-H mapping).
NATION_REGIONS = [
    0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
]

MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]

PART_TYPE_CLASSES = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
PART_TYPE_SURFACES = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
PART_TYPE_MATERIALS = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

DATE_LO = date_to_int("1992-01-01")
DATE_HI = date_to_int("1998-08-02")


def tpch_catalog_schemas() -> List[TableSchema]:
    """Schemas for the eight TPC-H tables (plus indexes used by the paper)."""
    integer = DataType.INT
    real = DataType.FLOAT
    text = DataType.STRING
    date = DataType.DATE
    return [
        TableSchema(
            "region",
            [
                ColumnSchema("r_regionkey", integer),
                ColumnSchema("r_name", text),
                ColumnSchema("r_comment", text),
            ],
            primary_key=("r_regionkey",),
        ),
        TableSchema(
            "nation",
            [
                ColumnSchema("n_nationkey", integer),
                ColumnSchema("n_name", text),
                ColumnSchema("n_regionkey", integer),
                ColumnSchema("n_comment", text),
            ],
            primary_key=("n_nationkey",),
        ),
        TableSchema(
            "supplier",
            [
                ColumnSchema("s_suppkey", integer),
                ColumnSchema("s_name", text),
                ColumnSchema("s_nationkey", integer),
                ColumnSchema("s_acctbal", real),
            ],
            primary_key=("s_suppkey",),
        ),
        TableSchema(
            "part",
            [
                ColumnSchema("p_partkey", integer),
                ColumnSchema("p_name", text),
                ColumnSchema("p_type", text),
                ColumnSchema("p_size", integer),
                ColumnSchema("p_retailprice", real),
                ColumnSchema("p_availqty", integer),
            ],
            primary_key=("p_partkey",),
        ),
        TableSchema(
            "partsupp",
            [
                ColumnSchema("ps_partkey", integer),
                ColumnSchema("ps_suppkey", integer),
                ColumnSchema("ps_availqty", integer),
                ColumnSchema("ps_supplycost", real),
            ],
            primary_key=("ps_partkey", "ps_suppkey"),
        ),
        TableSchema(
            "customer",
            [
                ColumnSchema("c_custkey", integer),
                ColumnSchema("c_name", text),
                ColumnSchema("c_nationkey", integer),
                ColumnSchema("c_mktsegment", text),
                ColumnSchema("c_acctbal", real),
            ],
            primary_key=("c_custkey",),
        ),
        TableSchema(
            "orders",
            [
                ColumnSchema("o_orderkey", integer),
                ColumnSchema("o_custkey", integer),
                ColumnSchema("o_orderstatus", text),
                ColumnSchema("o_totalprice", real),
                ColumnSchema("o_orderdate", date),
                ColumnSchema("o_orderpriority", text),
            ],
            primary_key=("o_orderkey",),
            indexes=[
                IndexSchema("idx_orders_orderdate", "orders", "o_orderdate"),
            ],
        ),
        TableSchema(
            "lineitem",
            [
                ColumnSchema("l_orderkey", integer),
                ColumnSchema("l_partkey", integer),
                ColumnSchema("l_suppkey", integer),
                ColumnSchema("l_linenumber", integer),
                ColumnSchema("l_quantity", real),
                ColumnSchema("l_extendedprice", real),
                ColumnSchema("l_discount", real),
                ColumnSchema("l_tax", real),
                ColumnSchema("l_shipdate", date),
                ColumnSchema("l_returnflag", text),
            ],
            primary_key=("l_orderkey", "l_linenumber"),
        ),
    ]


def _scaled(table: str, scale_factor: float) -> int:
    base = BASE_CARDINALITIES[table]
    if table in ("region", "nation"):
        return base
    return max(1, int(round(base * scale_factor)))


def generate_tpch_data(
    scale_factor: float = 0.01, seed: int = 20070612
) -> Dict[str, Dict[str, np.ndarray]]:
    """Generate column data for all eight tables.

    ``seed`` defaults to the paper's publication date; any fixed seed gives a
    reproducible database.
    """
    rng = np.random.default_rng(seed)
    data: Dict[str, Dict[str, np.ndarray]] = {}

    # region ---------------------------------------------------------------
    region_keys = np.arange(len(REGION_NAMES), dtype=np.int64)
    data["region"] = {
        "r_regionkey": region_keys,
        "r_name": np.array(REGION_NAMES, dtype=object),
        "r_comment": np.array(
            [f"region comment {i}" for i in region_keys], dtype=object
        ),
    }

    # nation ---------------------------------------------------------------
    nation_keys = np.arange(len(NATION_NAMES), dtype=np.int64)
    data["nation"] = {
        "n_nationkey": nation_keys,
        "n_name": np.array(NATION_NAMES, dtype=object),
        "n_regionkey": np.array(NATION_REGIONS, dtype=np.int64),
        "n_comment": np.array(
            [f"nation comment {i}" for i in nation_keys], dtype=object
        ),
    }

    # supplier ---------------------------------------------------------------
    n_supplier = _scaled("supplier", scale_factor)
    supp_keys = np.arange(1, n_supplier + 1, dtype=np.int64)
    data["supplier"] = {
        "s_suppkey": supp_keys,
        "s_name": np.array(
            [f"Supplier#{k:09d}" for k in supp_keys], dtype=object
        ),
        "s_nationkey": rng.integers(0, 25, n_supplier, dtype=np.int64),
        "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_supplier), 2),
    }

    # part -------------------------------------------------------------------
    n_part = _scaled("part", scale_factor)
    part_keys = np.arange(1, n_part + 1, dtype=np.int64)
    type_a = rng.integers(0, len(PART_TYPE_CLASSES), n_part)
    type_b = rng.integers(0, len(PART_TYPE_SURFACES), n_part)
    type_c = rng.integers(0, len(PART_TYPE_MATERIALS), n_part)
    part_types = np.array(
        [
            f"{PART_TYPE_CLASSES[a]} {PART_TYPE_SURFACES[b]} {PART_TYPE_MATERIALS[c]}"
            for a, b, c in zip(type_a, type_b, type_c)
        ],
        dtype=object,
    )
    data["part"] = {
        "p_partkey": part_keys,
        "p_name": np.array([f"part {k}" for k in part_keys], dtype=object),
        "p_type": part_types,
        "p_size": rng.integers(1, 51, n_part, dtype=np.int64),
        "p_retailprice": np.round(900.0 + (part_keys % 1000) * 0.1, 2),
        "p_availqty": rng.integers(1, 10_000, n_part, dtype=np.int64),
    }

    # partsupp -----------------------------------------------------------------
    n_partsupp = _scaled("partsupp", scale_factor)
    ps_part = rng.integers(1, n_part + 1, n_partsupp, dtype=np.int64)
    ps_supp = rng.integers(1, n_supplier + 1, n_partsupp, dtype=np.int64)
    data["partsupp"] = {
        "ps_partkey": ps_part,
        "ps_suppkey": ps_supp,
        "ps_availqty": rng.integers(1, 10_000, n_partsupp, dtype=np.int64),
        "ps_supplycost": np.round(rng.uniform(1.0, 1000.0, n_partsupp), 2),
    }

    # customer -----------------------------------------------------------------
    n_customer = _scaled("customer", scale_factor)
    cust_keys = np.arange(1, n_customer + 1, dtype=np.int64)
    segments = np.array(MARKET_SEGMENTS, dtype=object)[
        rng.integers(0, len(MARKET_SEGMENTS), n_customer)
    ]
    data["customer"] = {
        "c_custkey": cust_keys,
        "c_name": np.array(
            [f"Customer#{k:09d}" for k in cust_keys], dtype=object
        ),
        "c_nationkey": rng.integers(0, 25, n_customer, dtype=np.int64),
        "c_mktsegment": segments,
        "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_customer), 2),
    }

    # orders ---------------------------------------------------------------
    n_orders = _scaled("orders", scale_factor)
    order_keys = np.arange(1, n_orders + 1, dtype=np.int64)
    order_dates = rng.integers(DATE_LO, DATE_HI + 1, n_orders, dtype=np.int64)
    data["orders"] = {
        "o_orderkey": order_keys,
        "o_custkey": rng.integers(1, n_customer + 1, n_orders, dtype=np.int64),
        "o_orderstatus": np.array(["O", "F", "P"], dtype=object)[
            rng.integers(0, 3, n_orders)
        ],
        "o_totalprice": np.round(rng.uniform(850.0, 500_000.0, n_orders), 2),
        "o_orderdate": order_dates,
        "o_orderpriority": np.array(ORDER_PRIORITIES, dtype=object)[
            rng.integers(0, len(ORDER_PRIORITIES), n_orders)
        ],
    }

    # lineitem -----------------------------------------------------------------
    lines_per_order = rng.integers(1, 8, n_orders, dtype=np.int64)
    l_orderkey = np.repeat(order_keys, lines_per_order)
    l_orderdate = np.repeat(order_dates, lines_per_order)
    n_lineitem = len(l_orderkey)
    l_linenumber = np.concatenate(
        [np.arange(1, c + 1, dtype=np.int64) for c in lines_per_order]
    )
    quantities = rng.integers(1, 51, n_lineitem).astype(np.float64)
    prices = np.round(quantities * rng.uniform(900.0, 1100.0, n_lineitem), 2)
    ship_delay = rng.integers(1, 122, n_lineitem, dtype=np.int64)
    data["lineitem"] = {
        "l_orderkey": l_orderkey,
        "l_partkey": rng.integers(1, n_part + 1, n_lineitem, dtype=np.int64),
        "l_suppkey": rng.integers(1, n_supplier + 1, n_lineitem, dtype=np.int64),
        "l_linenumber": l_linenumber,
        "l_quantity": quantities,
        "l_extendedprice": prices,
        "l_discount": np.round(rng.uniform(0.0, 0.10, n_lineitem), 2),
        "l_tax": np.round(rng.uniform(0.0, 0.08, n_lineitem), 2),
        "l_shipdate": l_orderdate + ship_delay,
        "l_returnflag": np.array(["R", "A", "N"], dtype=object)[
            rng.integers(0, 3, n_lineitem)
        ],
    }
    return data


def build_tpch_database(
    scale_factor: float = 0.01,
    seed: int = 20070612,
    analyze: bool = True,
    histogram_buckets: int = 32,
) -> Database:
    """Create, load, and (optionally) analyze a TPC-H database."""
    database = Database()
    data = generate_tpch_data(scale_factor, seed)
    for schema in tpch_catalog_schemas():
        database.create_table(schema, data[schema.name])
    # Index registration happened at create_table time; refresh after load.
    for schema in tpch_catalog_schemas():
        for index_schema in schema.indexes:
            database.index(index_schema.name).refresh()
    if analyze:
        database.analyze(histogram_buckets=histogram_buckets)
    return database
