"""Schema metadata: columns, tables, and the catalog that holds them.

The catalog is deliberately independent of the storage layer: the optimizer
and the SQL binder consult the catalog only, so they can be unit-tested
without materializing any data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CatalogError
from ..types import DataType


@dataclass(frozen=True)
class ColumnSchema:
    """A single column: name, type, and an optional NDV hint.

    ``ndv_hint`` lets schema authors declare the expected number of distinct
    values before statistics are collected; collected stats override it.
    """

    name: str
    data_type: DataType
    ndv_hint: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid column name {self.name!r}")


@dataclass
class IndexSchema:
    """A secondary index over one column of a table.

    The engine supports single-column range indexes, enough to reproduce the
    paper's Example 7 (a cheap index lookup on ``o_orderdate`` making one
    consumer too cheap to benefit from a CSE).
    """

    name: str
    table: str
    column: str
    unique: bool = False


@dataclass
class TableSchema:
    """A table: ordered columns plus key/index metadata."""

    name: str
    columns: List[ColumnSchema]
    primary_key: Tuple[str, ...] = ()
    indexes: List[IndexSchema] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid table name {self.name!r}")
        seen = set()
        for column in self.columns:
            if column.name in seen:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            seen.add(column.name)
        for key_col in self.primary_key:
            if key_col not in seen:
                raise CatalogError(
                    f"primary key column {key_col!r} not in table {self.name!r}"
                )

    @property
    def column_names(self) -> List[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        """Whether the table declares this column."""
        return any(c.name == name for c in self.columns)

    def column(self, name: str) -> ColumnSchema:
        """One column's schema, by name."""
        for col in self.columns:
            if col.name == name:
                return col
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def column_type(self, name: str) -> DataType:
        """One column's data type, by name."""
        return self.column(name).data_type

    def row_width(self, columns: Optional[Iterable[str]] = None) -> int:
        """Approximate row width in bytes over the given (or all) columns."""
        names = list(columns) if columns is not None else self.column_names
        return sum(self.column(n).data_type.byte_width for n in names)

    def index_on(self, column: str) -> Optional[IndexSchema]:
        """The index over ``column``, if declared."""
        for index in self.indexes:
            if index.column == column:
                return index
        return None

    def add_index(self, index: IndexSchema) -> None:
        """Declare an index (validated against this table)."""
        if index.table != self.name:
            raise CatalogError(
                f"index {index.name!r} targets {index.table!r}, not {self.name!r}"
            )
        if not self.has_column(index.column):
            raise CatalogError(
                f"index {index.name!r} references missing column {index.column!r}"
            )
        if any(existing.name == index.name for existing in self.indexes):
            raise CatalogError(f"duplicate index name {index.name!r}")
        self.indexes.append(index)


class Catalog:
    """The collection of table schemas known to a database."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableSchema] = {}

    def add_table(self, schema: TableSchema) -> None:
        """Register a table schema (names are case-insensitive)."""
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[key] = schema

    def drop_table(self, name: str) -> None:
        """Remove a table schema."""
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def has_table(self, name: str) -> bool:
        """Whether a table of this name is registered."""
        return name.lower() in self._tables

    def table(self, name: str) -> TableSchema:
        """One table's schema, by name."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def tables(self) -> Sequence[TableSchema]:
        """All table schemas."""
        return list(self._tables.values())

    def table_names(self) -> List[str]:
        """All table names."""
        return [t.name for t in self._tables.values()]
