"""Catalog: schema metadata, statistics, and the TPC-H data generator."""

from .schema import Catalog, ColumnSchema, TableSchema
from .statistics import ColumnStats, TableStats

__all__ = [
    "Catalog",
    "ColumnSchema",
    "TableSchema",
    "ColumnStats",
    "TableStats",
]
