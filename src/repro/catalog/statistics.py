"""Table and column statistics used for cardinality estimation.

Statistics are collected by scanning stored tables (see
:meth:`repro.storage.database.Database.analyze`). The estimator (in
``repro.optimizer.cardinality``) relies on:

* table cardinality,
* per-column NDV (number of distinct values),
* per-column min/max for range-selectivity under a uniformity assumption,
* an optional equi-depth histogram for numeric columns, which sharpens range
  estimates on skewed columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..types import DataType


@dataclass
class Histogram:
    """Equi-depth histogram over a numeric column.

    ``buckets`` holds ``(low, high, count)`` triples with *inclusive*
    bounds, built by slicing the sorted column into (nearly) equal-count
    runs. A bucket with ``low == high`` is a singleton-value bucket — this
    representation keeps estimates sharp on skewed columns, where quantile
    boundaries collapse.
    """

    buckets: List[Tuple[float, float, int]]

    @classmethod
    def build(cls, values: np.ndarray, buckets: int = 32) -> "Histogram":
        """Equi-depth histogram from raw column values."""
        n = len(values)
        if n == 0:
            return cls(buckets=[])
        data = np.sort(values.astype(np.float64))
        bucket_count = max(1, min(buckets, n))
        edges = np.linspace(0, n, bucket_count + 1).astype(int)
        built: List[Tuple[float, float, int]] = []
        for i in range(bucket_count):
            lo_idx, hi_idx = edges[i], edges[i + 1]
            if hi_idx <= lo_idx:
                continue
            built.append(
                (float(data[lo_idx]), float(data[hi_idx - 1]), int(hi_idx - lo_idx))
            )
        return cls(buckets=built)

    @property
    def total(self) -> int:
        """Total rows covered by the histogram."""
        return sum(count for _, _, count in self.buckets)

    def fraction_below(self, value: float, inclusive: bool) -> float:
        """Estimated fraction of rows with column value < (or <=) ``value``."""
        total = self.total
        if total == 0:
            return 0.0
        covered = 0.0
        for low, high, count in self.buckets:
            if value > high or (inclusive and value == high):
                covered += count
                continue
            if value < low or (not inclusive and value == low):
                break
            width = high - low
            if width <= 0:
                # Singleton bucket with low == value == high, exclusive.
                break
            covered += count * (value - low) / width
            break
        return min(1.0, covered / total)

    def fraction_between(
        self, low: Optional[float], high: Optional[float],
        low_inclusive: bool = True, high_inclusive: bool = True,
    ) -> float:
        """Estimated fraction of rows within [low, high]."""
        lo_frac = 0.0 if low is None else self.fraction_below(low, not low_inclusive)
        hi_frac = 1.0 if high is None else self.fraction_below(high, high_inclusive)
        return max(0.0, hi_frac - lo_frac)


#: Collect most-common values for columns with at most this many distincts.
MCV_NDV_LIMIT = 64
#: Keep at most this many (value, frequency) pairs.
MCV_SIZE = 16


@dataclass
class ColumnStats:
    """Statistics for one column of one table."""

    ndv: int
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    histogram: Optional[Histogram] = None
    #: most-common values: value -> fraction of rows, for low-NDV columns.
    mcv: Dict[object, float] = field(default_factory=dict)

    @classmethod
    def collect(
        cls, values: np.ndarray, data_type: DataType, histogram_buckets: int = 32
    ) -> "ColumnStats":
        """Collect stats (NDV, min/max, histogram, MCV) for one column."""
        n = len(values)
        if n == 0:
            return cls(ndv=0)
        if data_type is DataType.STRING:
            counts: Dict[object, int] = {}
            for value in values.tolist():
                counts[value] = counts.get(value, 0) + 1
            ndv = len(counts)
            mcv = _mcv_from_counts(counts, n) if ndv <= MCV_NDV_LIMIT else {}
            return cls(ndv=ndv, mcv=mcv)
        unique, unique_counts = np.unique(values, return_counts=True)
        ndv = int(len(unique))
        as_float = values.astype(np.float64)
        histogram = None
        if histogram_buckets > 0:
            histogram = Histogram.build(values, histogram_buckets)
        mcv: Dict[object, float] = {}
        if ndv <= MCV_NDV_LIMIT:
            counts = dict(zip(unique.tolist(), unique_counts.tolist()))
            mcv = _mcv_from_counts(counts, n)
        return cls(
            ndv=ndv,
            min_value=float(as_float.min()),
            max_value=float(as_float.max()),
            histogram=histogram,
            mcv=mcv,
        )


def _mcv_from_counts(counts: Dict[object, int], total: int) -> Dict[object, float]:
    top = sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:MCV_SIZE]
    return {value: count / total for value, count in top}


@dataclass
class TableStats:
    """Statistics for one table."""

    row_count: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        """Stats for one column, if collected."""
        return self.columns.get(name)

    def ndv(self, name: str, default: Optional[int] = None) -> Optional[int]:
        """A column's NDV, or ``default`` when unknown."""
        stats = self.columns.get(name)
        if stats is None:
            return default
        return stats.ndv
