"""In-memory column-oriented storage engine."""

from .table import Table
from .index import RangeIndex
from .worktable import WorkTable
from .database import Database

__all__ = ["Table", "RangeIndex", "WorkTable", "Database"]
