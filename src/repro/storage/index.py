"""Secondary range indexes.

A :class:`RangeIndex` keeps the row positions of a table sorted by one
column's value, so equality and range lookups cost ``O(log n + matches)``.
The optimizer models an index lookup as touching only the matching rows,
which is what makes some expressions "too cheap to share" — the situation
the paper's Heuristic 3 / Example 7 relies on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import StorageError
from .table import Table


class RangeIndex:
    """Sorted-position index over a single numeric/date column."""

    def __init__(self, name: str, table: Table, column: str) -> None:
        schema_col = table.schema.column(column)
        if not schema_col.data_type.is_numeric:
            raise StorageError(
                f"index {name!r}: column {column!r} is not numeric/date"
            )
        self.name = name
        self.table = table
        self.column = column
        self._build()

    def _build(self) -> None:
        values = self.table.column(self.column)
        self._order = np.argsort(values, kind="stable")
        self._sorted_values = values[self._order]

    def refresh(self) -> None:
        """Rebuild after the underlying table changed."""
        self._build()

    @property
    def entry_count(self) -> int:
        """Number of indexed rows."""
        return len(self._sorted_values)

    def lookup_range(
        self,
        low: Optional[float] = None,
        high: Optional[float] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row positions whose column value lies in the given range."""
        if self.entry_count == 0:
            return np.empty(0, dtype=np.int64)
        lo_pos = 0
        hi_pos = self.entry_count
        if low is not None:
            side = "left" if low_inclusive else "right"
            lo_pos = int(np.searchsorted(self._sorted_values, low, side=side))
        if high is not None:
            side = "right" if high_inclusive else "left"
            hi_pos = int(np.searchsorted(self._sorted_values, high, side=side))
        if hi_pos <= lo_pos:
            return np.empty(0, dtype=np.int64)
        return self._order[lo_pos:hi_pos]

    def lookup_equal(self, value: float) -> np.ndarray:
        """Row positions whose column equals ``value``."""
        return self.lookup_range(low=value, high=value)

    def estimate_range(
        self, low: Optional[float], high: Optional[float]
    ) -> Tuple[int, int]:
        """(matching rows, total rows) without materializing positions."""
        matches = len(self.lookup_range(low, high))
        return matches, self.entry_count
