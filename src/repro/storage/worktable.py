"""Work tables: spool targets and delta tables.

The paper's spool operator materializes a CSE's result into an internal work
table that consumers then read sequentially (§4.3.2, §5.2). A
:class:`WorkTable` is that internal table: a bag of rows with named, typed
columns but no catalog presence.

Delta tables for view maintenance (§6.4) are work tables tagged with the base
table whose update they capture; the CSE machinery treats them "as a special
table when generating table signatures" — we give them a distinguishable
signature name ``delta(<base>)``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import StorageError
from ..types import DataType, coerce_column


class WorkTable:
    """A materialized intermediate result.

    Thread-safety contract (parallel executor): a work table is built and
    loaded by exactly one producer task before being published to the
    shared spool map; :meth:`load` installs the validated columns with a
    single atomic dict swap and nothing mutates the arrays afterwards, so
    any number of concurrent consumers may read columns without locking.
    """

    def __init__(
        self,
        name: str,
        column_names: Sequence[str],
        column_types: Sequence[DataType],
        columns: Optional[Mapping[str, np.ndarray]] = None,
        delta_of: Optional[str] = None,
    ) -> None:
        if len(column_names) != len(column_types):
            raise StorageError("column names/types length mismatch")
        if len(set(column_names)) != len(column_names):
            raise StorageError(f"duplicate column names in work table {name!r}")
        self.name = name
        self.column_names: List[str] = list(column_names)
        self.column_types: List[DataType] = list(column_types)
        self.delta_of = delta_of
        self._columns: Dict[str, np.ndarray] = {}
        if columns is not None:
            self.load(columns)
        else:
            for col_name, col_type in zip(self.column_names, self.column_types):
                self._columns[col_name] = np.empty(0, dtype=col_type.numpy_dtype)

    @property
    def signature_name(self) -> str:
        """Name used when this table participates in table signatures."""
        if self.delta_of is not None:
            return f"delta({self.delta_of})"
        return self.name

    def load(self, columns: Mapping[str, np.ndarray]) -> None:
        """Replace the work table's columns (validates names/lengths)."""
        if set(columns) != set(self.column_names):
            raise StorageError(
                f"work table {self.name!r}: expected columns "
                f"{self.column_names}, got {sorted(columns)}"
            )
        length: Optional[int] = None
        loaded: Dict[str, np.ndarray] = {}
        for col_name, col_type in zip(self.column_names, self.column_types):
            data = coerce_column(columns[col_name], col_type)
            if length is None:
                length = len(data)
            elif len(data) != length:
                raise StorageError(
                    f"work table {self.name!r}: ragged column {col_name!r}"
                )
            loaded[col_name] = data
        self._columns = loaded

    @property
    def row_count(self) -> int:
        """Number of materialized rows."""
        first = next(iter(self._columns.values()), None)
        return 0 if first is None else len(first)

    def __len__(self) -> int:
        return self.row_count

    def column(self, name: str) -> np.ndarray:
        """One column, by name."""
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"work table {self.name!r} has no column {name!r}"
            ) from None

    def column_type(self, name: str) -> DataType:
        """The declared type of one column."""
        try:
            position = self.column_names.index(name)
        except ValueError:
            raise StorageError(
                f"work table {self.name!r} has no column {name!r}"
            ) from None
        return self.column_types[position]

    def columns(self) -> Dict[str, np.ndarray]:
        """A shallow copy of the column mapping."""
        return dict(self._columns)

    def row_width(self) -> int:
        """Row width in bytes (sum of column type widths)."""
        return sum(t.byte_width for t in self.column_types)

    def size_bytes(self) -> int:
        """Total size in bytes."""
        return self.row_count * self.row_width()
