"""Column-oriented in-memory tables.

A :class:`Table` stores each column as a numpy array. All columns must have
identical length. Tables are append-only from the storage layer's point of
view; updates happen through the view-maintenance machinery which works with
delta tables rather than in-place mutation (mirroring how the paper treats
updates, §6.4).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..catalog.schema import TableSchema
from ..errors import StorageError
from ..types import DataType, coerce_column


class Table:
    """Column store for one table's rows."""

    def __init__(self, schema: TableSchema, columns: Optional[Mapping[str, Any]] = None):
        self.schema = schema
        self._columns: Dict[str, np.ndarray] = {}
        if columns is None:
            for col in schema.columns:
                self._columns[col.name] = np.empty(0, dtype=col.data_type.numpy_dtype)
        else:
            self._set_columns(columns)

    def _set_columns(self, columns: Mapping[str, Any]) -> None:
        provided = set(columns)
        expected = set(self.schema.column_names)
        if provided != expected:
            raise StorageError(
                f"table {self.schema.name!r}: expected columns {sorted(expected)}, "
                f"got {sorted(provided)}"
            )
        coerced: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for col in self.schema.columns:
            data = coerce_column(columns[col.name], col.data_type)
            if length is None:
                length = len(data)
            elif len(data) != length:
                raise StorageError(
                    f"table {self.schema.name!r}: column {col.name!r} has "
                    f"{len(data)} rows, expected {length}"
                )
            coerced[col.name] = data
        self._columns = coerced

    # -- shape -------------------------------------------------------------

    @property
    def name(self) -> str:
        """The schema name of this table."""
        return self.schema.name

    @property
    def row_count(self) -> int:
        """Number of stored rows."""
        first = next(iter(self._columns.values()), None)
        return 0 if first is None else len(first)

    def __len__(self) -> int:
        return self.row_count

    # -- access ------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """One column as a numpy array, by name."""
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"table {self.schema.name!r} has no column {name!r}"
            ) from None

    def columns(self) -> Dict[str, np.ndarray]:
        """A shallow copy of the column mapping."""
        return dict(self._columns)

    def row(self, index: int) -> Tuple[Any, ...]:
        """One row as a tuple, by position."""
        if not 0 <= index < self.row_count:
            raise StorageError(f"row index {index} out of range")
        return tuple(self._columns[c.name][index] for c in self.schema.columns)

    def rows(self) -> List[Tuple[Any, ...]]:
        """All rows as tuples in schema column order."""
        names = self.schema.column_names
        cols = [self._columns[n] for n in names]
        return list(zip(*[c.tolist() for c in cols])) if cols else []

    def select(self, mask_or_indices: np.ndarray) -> "Table":
        """A new table with the rows selected by a boolean mask or index array."""
        subset = {name: col[mask_or_indices] for name, col in self._columns.items()}
        table = Table.__new__(Table)
        table.schema = self.schema
        table._columns = subset
        return table

    # -- mutation ----------------------------------------------------------

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append rows (sequences ordered like the schema). Returns the count."""
        rows = list(rows)
        if not rows:
            return 0
        names = self.schema.column_names
        for row in rows:
            if len(row) != len(names):
                raise StorageError(
                    f"row has {len(row)} values, table {self.name!r} has "
                    f"{len(names)} columns"
                )
        # Copy-on-write: build the appended columns aside and publish them
        # with one atomic dict swap, so concurrent readers never observe a
        # ragged half-appended table (arrays themselves are immutable here).
        updated = dict(self._columns)
        for position, col in enumerate(self.schema.columns):
            new_values = coerce_column(
                [row[position] for row in rows], col.data_type
            )
            updated[col.name] = np.concatenate(
                [updated[col.name], new_values]
            )
        self._columns = updated
        return len(rows)

    def replace_data(self, columns: Mapping[str, Any]) -> None:
        """Replace the table contents wholesale (used by data loaders)."""
        self._set_columns(columns)

    # -- cost-model helpers --------------------------------------------------

    def row_width(self) -> int:
        """Approximate stored row width in bytes."""
        return self.schema.row_width()

    def size_bytes(self) -> int:
        """Approximate total size in bytes (rows x width)."""
        return self.row_count * self.row_width()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, rows={self.row_count})"
