"""The database: catalog + stored tables + indexes + statistics.

This is the substrate every other layer builds on. The optimizer consults
``Database.statistics`` for cardinality estimation; the executor reads table
columns; the CSE machinery never touches storage directly.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from ..catalog.schema import Catalog, IndexSchema, TableSchema
from ..catalog.statistics import ColumnStats, TableStats
from ..errors import CatalogError, StorageError
from .index import RangeIndex
from .table import Table


class Database:
    """An in-memory database instance."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, RangeIndex] = {}
        self._stats: Dict[str, TableStats] = {}

    # -- DDL ---------------------------------------------------------------

    def create_table(
        self, schema: TableSchema, data: Optional[Mapping[str, Any]] = None
    ) -> Table:
        """Register a schema and create its (optionally pre-loaded) table."""
        self.catalog.add_table(schema)
        table = Table(schema, data)
        self._tables[schema.name.lower()] = table
        for index_schema in schema.indexes:
            self._register_index(index_schema, table)
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table, its indexes, and its statistics."""
        self.catalog.drop_table(name)
        key = name.lower()
        table = self._tables.pop(key)
        for index_name in [
            n for n, ix in self._indexes.items() if ix.table is table
        ]:
            del self._indexes[index_name]
        self._stats.pop(key, None)

    def create_index(self, name: str, table_name: str, column: str) -> RangeIndex:
        """Create a range index over one numeric/date column."""
        schema = self.catalog.table(table_name)
        index_schema = IndexSchema(name=name, table=schema.name, column=column)
        schema.add_index(index_schema)
        return self._register_index(index_schema, self.table(table_name))

    def _register_index(self, index_schema: IndexSchema, table: Table) -> RangeIndex:
        key = index_schema.name.lower()
        if key in self._indexes:
            raise CatalogError(f"index {index_schema.name!r} already exists")
        index = RangeIndex(index_schema.name, table, index_schema.column)
        self._indexes[key] = index
        return index

    # -- access ------------------------------------------------------------

    def table(self, name: str) -> Table:
        """The stored table, by (case-insensitive) name."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        """Whether a table of this name exists."""
        return name.lower() in self._tables

    def index(self, name: str) -> RangeIndex:
        """A registered index, by name."""
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"index {name!r} does not exist") from None

    def index_for(self, table_name: str, column: str) -> Optional[RangeIndex]:
        """The range index over ``table.column``, if one exists."""
        for index in self._indexes.values():
            if index.table.name.lower() == table_name.lower() and index.column == column:
                return index
        return None

    # -- DML ---------------------------------------------------------------

    def insert(self, table_name: str, rows: Any) -> int:
        """Append rows; refreshes indexes and invalidates statistics."""
        table = self.table(table_name)
        count = table.append_rows(rows)
        for index in self._indexes.values():
            if index.table is table:
                index.refresh()
        # Stored statistics are now stale; callers re-run analyze().
        self._stats.pop(table_name.lower(), None)
        return count

    def load(self, table_name: str, columns: Mapping[str, Any]) -> None:
        """Replace a table's contents wholesale."""
        table = self.table(table_name)
        table.replace_data(columns)
        for index in self._indexes.values():
            if index.table is table:
                index.refresh()
        self._stats.pop(table_name.lower(), None)

    # -- statistics ----------------------------------------------------------

    def analyze(self, table_name: Optional[str] = None, histogram_buckets: int = 32) -> None:
        """Collect statistics for one table or all tables."""
        names = [table_name] if table_name else list(self._tables)
        for name in names:
            table = self.table(name)
            column_stats: Dict[str, ColumnStats] = {}
            for col in table.schema.columns:
                column_stats[col.name] = ColumnStats.collect(
                    table.column(col.name), col.data_type, histogram_buckets
                )
            self._stats[name.lower()] = TableStats(
                row_count=table.row_count, columns=column_stats
            )

    def statistics(self, table_name: str) -> TableStats:
        """Collected statistics (bare row count before analyze())."""
        key = table_name.lower()
        if key not in self._stats:
            if key not in self._tables:
                raise CatalogError(f"table {table_name!r} does not exist")
            # Fall back to a bare row count when analyze() has not run.
            return TableStats(row_count=self.table(table_name).row_count)
        return self._stats[key]

    def has_statistics(self, table_name: str) -> bool:
        """Whether analyze() has run for this table."""
        return table_name.lower() in self._stats
