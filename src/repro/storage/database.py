"""The database: catalog + stored tables + indexes + statistics.

This is the substrate every other layer builds on. The optimizer consults
``Database.statistics`` for cardinality estimation; the executor reads table
columns; the CSE machinery never touches storage directly.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..catalog.schema import Catalog, IndexSchema, TableSchema
from ..catalog.statistics import ColumnStats, TableStats
from ..errors import CatalogError, StorageError
from .index import RangeIndex
from .table import Table

#: A mutation listener: called with the lower-cased table name that changed,
#: or None for batch-wide changes. Plan caches register one to invalidate.
MutationListener = Callable[[Optional[str]], None]


class Database:
    """An in-memory database instance.

    Mutations (DDL, DML, and ``analyze``) are serialized by an internal
    lock and announced to registered :data:`MutationListener` callbacks;
    DDL and statistics changes additionally bump :attr:`catalog_version`,
    which plan-cache keys embed so schema changes re-key every entry.
    Reads are lock-free: tables publish column updates with atomic swaps.
    """

    def __init__(self) -> None:
        self.catalog = Catalog()
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, RangeIndex] = {}
        self._stats: Dict[str, TableStats] = {}
        self._mutation_lock = threading.RLock()
        self._listeners: List[MutationListener] = []
        self._catalog_version = 0

    # -- mutation bookkeeping ----------------------------------------------

    @property
    def catalog_version(self) -> int:
        """Monotonic version bumped by DDL and statistics changes."""
        return self._catalog_version

    def add_mutation_listener(self, listener: MutationListener) -> None:
        """Register a callback fired after every mutation."""
        with self._mutation_lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_mutation_listener(self, listener: MutationListener) -> None:
        """Unregister a mutation callback (no-op when absent)."""
        with self._mutation_lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _mutated(self, table_name: Optional[str], ddl: bool = False) -> None:
        if ddl:
            self._catalog_version += 1
        for listener in list(self._listeners):
            listener(table_name.lower() if table_name else None)

    # -- DDL ---------------------------------------------------------------

    def create_table(
        self, schema: TableSchema, data: Optional[Mapping[str, Any]] = None
    ) -> Table:
        """Register a schema and create its (optionally pre-loaded) table."""
        with self._mutation_lock:
            self.catalog.add_table(schema)
            table = Table(schema, data)
            self._tables[schema.name.lower()] = table
            for index_schema in schema.indexes:
                self._register_index(index_schema, table)
            self._mutated(schema.name, ddl=True)
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table, its indexes, and its statistics."""
        with self._mutation_lock:
            self.catalog.drop_table(name)
            key = name.lower()
            table = self._tables.pop(key)
            for index_name in [
                n for n, ix in self._indexes.items() if ix.table is table
            ]:
                del self._indexes[index_name]
            self._stats.pop(key, None)
            self._mutated(name, ddl=True)

    def create_index(self, name: str, table_name: str, column: str) -> RangeIndex:
        """Create a range index over one numeric/date column."""
        with self._mutation_lock:
            schema = self.catalog.table(table_name)
            index_schema = IndexSchema(
                name=name, table=schema.name, column=column
            )
            schema.add_index(index_schema)
            index = self._register_index(index_schema, self.table(table_name))
            self._mutated(table_name, ddl=True)
        return index

    def _register_index(self, index_schema: IndexSchema, table: Table) -> RangeIndex:
        key = index_schema.name.lower()
        if key in self._indexes:
            raise CatalogError(f"index {index_schema.name!r} already exists")
        index = RangeIndex(index_schema.name, table, index_schema.column)
        self._indexes[key] = index
        return index

    # -- access ------------------------------------------------------------

    def table(self, name: str) -> Table:
        """The stored table, by (case-insensitive) name."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        """Whether a table of this name exists."""
        return name.lower() in self._tables

    def index(self, name: str) -> RangeIndex:
        """A registered index, by name."""
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"index {name!r} does not exist") from None

    def index_for(self, table_name: str, column: str) -> Optional[RangeIndex]:
        """The range index over ``table.column``, if one exists."""
        for index in self._indexes.values():
            if index.table.name.lower() == table_name.lower() and index.column == column:
                return index
        return None

    # -- DML ---------------------------------------------------------------

    def insert(self, table_name: str, rows: Any) -> int:
        """Append rows; refreshes indexes and invalidates statistics."""
        with self._mutation_lock:
            table = self.table(table_name)
            count = table.append_rows(rows)
            for index in self._indexes.values():
                if index.table is table:
                    index.refresh()
            # Stored statistics are now stale; callers re-run analyze().
            self._stats.pop(table_name.lower(), None)
            self._mutated(table_name)
        return count

    def load(self, table_name: str, columns: Mapping[str, Any]) -> None:
        """Replace a table's contents wholesale."""
        with self._mutation_lock:
            table = self.table(table_name)
            table.replace_data(columns)
            for index in self._indexes.values():
                if index.table is table:
                    index.refresh()
            self._stats.pop(table_name.lower(), None)
            self._mutated(table_name)

    # -- statistics ----------------------------------------------------------

    def analyze(self, table_name: Optional[str] = None, histogram_buckets: int = 32) -> None:
        """Collect statistics for one table or all tables."""
        with self._mutation_lock:
            names = [table_name] if table_name else list(self._tables)
            for name in names:
                table = self.table(name)
                column_stats: Dict[str, ColumnStats] = {}
                for col in table.schema.columns:
                    column_stats[col.name] = ColumnStats.collect(
                        table.column(col.name), col.data_type, histogram_buckets
                    )
                self._stats[name.lower()] = TableStats(
                    row_count=table.row_count, columns=column_stats
                )
                # Fresh statistics change plan choice just like DDL does.
                self._mutated(name, ddl=True)

    def statistics(self, table_name: str) -> TableStats:
        """Collected statistics (bare row count before analyze())."""
        key = table_name.lower()
        if key not in self._stats:
            if key not in self._tables:
                raise CatalogError(f"table {table_name!r} does not exist")
            # Fall back to a bare row count when analyze() has not run.
            return TableStats(row_count=self.table(table_name).row_count)
        return self._stats[key]

    def has_statistics(self, table_name: str) -> bool:
        """Whether analyze() has run for this table."""
        return table_name.lower() in self._stats
