"""Benchmark harness: regenerates the paper's experiment tables/figures."""

from .harness import (
    MODE_CSE,
    MODE_NO_CSE,
    MODE_NO_HEURISTICS,
    ScenarioResult,
    format_table,
    run_scenario,
)

__all__ = [
    "MODE_CSE",
    "MODE_NO_CSE",
    "MODE_NO_HEURISTICS",
    "ScenarioResult",
    "format_table",
    "run_scenario",
]
