"""Shared machinery for the experiment benchmarks.

Each experiment runs a workload in the paper's three modes and reports the
same rows its tables do:

* ``# of CSEs [CSE Opts]`` — candidates given to the optimizer and the
  number of CSE optimization passes,
* ``Optimization time`` — wall-clock seconds in the optimizer,
* ``Estimated cost`` — the optimizer's cost for the chosen plan,
* ``Execution cost`` — deterministic cost units measured by the executor
  (the hardware-independent stand-in for the paper's execution seconds),
* ``Execution time`` — wall-clock seconds in the executor.

Every number comes from a :class:`~repro.obs.MetricsRegistry` snapshot:
:func:`run_mode` runs each phase under a ``bench.*`` timer and reads the
``optimizer.*``/``executor.*`` counters the instrumented layers publish,
plus the estimate-vs-actual cardinality error (q-error) computed from
per-operator actuals.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..api import Session
from ..obs import MetricsRegistry
from ..optimizer.options import OptimizerOptions
from ..storage.database import Database

MODE_NO_CSE = "No CSE"
MODE_CSE = "Using CSEs"
MODE_NO_HEURISTICS = "Using CSEs (no heuristics)"


def bench_scale_factor(default: float = 0.01) -> float:
    """Scale factor for benchmarks; override with REPRO_BENCH_SF."""
    return float(os.environ.get("REPRO_BENCH_SF", default))


def options_for(mode: str) -> OptimizerOptions:
    """Optimizer options for one of the paper's three modes."""
    if mode == MODE_NO_CSE:
        return OptimizerOptions(enable_cse=False)
    if mode == MODE_CSE:
        return OptimizerOptions()
    if mode == MODE_NO_HEURISTICS:
        return OptimizerOptions(
            enable_heuristics=False, max_cse_optimizations=16
        )
    raise ValueError(f"unknown mode {mode!r}")


@dataclass
class ScenarioResult:
    """One mode's measurements for one workload."""

    mode: str
    candidates: int
    cse_optimizations: int
    optimization_time: float
    est_cost: float
    exec_cost: float
    exec_time: float
    used_cses: List[str] = field(default_factory=list)
    candidate_ids: List[str] = field(default_factory=list)
    #: the full registry snapshot the run produced (counters/gauges/timers).
    snapshot: Dict = field(default_factory=dict)
    #: per-phase wall seconds from the ``bench.*`` timers.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: estimate-vs-actual cardinality error over all executed operators;
    #: 1.0 means every estimate was exact.
    q_error_mean: float = 1.0
    q_error_max: float = 1.0

    @property
    def cses_cell(self) -> str:
        """The table cell '<candidates> [<passes>]' (N/A without CSEs)."""
        if self.mode == MODE_NO_CSE:
            return "N/A"
        return f"{self.candidates} [{self.cse_optimizations}]"

    def counter(self, name: str, default: float = 0.0) -> float:
        """One counter from the run's registry snapshot."""
        return self.snapshot.get("counters", {}).get(name, default)


def cardinality_errors(execution, bundle=None) -> List[float]:
    """Per-operator q-errors (max of over/under-estimate factor) from an
    execution that collected op stats. Includes spool bodies when the
    bundle is supplied."""
    plans = list(execution.executed_plans.values())
    if bundle is not None:
        plans.extend(body for _, body in bundle.root_spools)
    errors: List[float] = []
    for plan in plans:
        for node in plan.walk():
            stats = execution.stats_for(node)
            if stats is None:
                continue
            est = max(float(node.est_rows), 1.0)
            actual = max(float(stats.rows_out), 1.0)
            errors.append(max(est / actual, actual / est))
    return errors


def run_mode(
    database: Database,
    sql: str,
    mode: str,
    registry: Optional[MetricsRegistry] = None,
) -> ScenarioResult:
    """Optimize + execute one workload in one mode.

    All reported numbers are read back from the registry snapshot (phase
    timers ``bench.optimize``/``bench.execute``/``bench.total``, optimizer
    and executor counters) rather than from ad-hoc clocks."""
    registry = registry if registry is not None else MetricsRegistry()
    session = Session(database, options_for(mode), registry=registry)
    with registry.timer("bench.total"):
        with registry.timer("bench.optimize"):
            result = session.optimize(sql)
        with registry.timer("bench.execute"):
            execution = session.execute_bundle(result, collect_op_stats=True)
    snapshot = registry.snapshot()
    timers = snapshot.get("timers", {})
    phases = {
        name: timers[name]["total"]
        for name in ("bench.total", "bench.optimize", "bench.execute")
        if name in timers
    }
    errors = cardinality_errors(execution, result.bundle)
    stats = result.stats
    counters = snapshot.get("counters", {})
    return ScenarioResult(
        mode=mode,
        candidates=int(counters.get(
            "optimizer.candidates_generated", stats.candidates_generated
        )),
        cse_optimizations=int(counters.get(
            "optimizer.cse_passes", stats.cse_optimizations
        )),
        optimization_time=phases.get(
            "bench.optimize", stats.optimization_time
        ),
        est_cost=result.est_cost,
        exec_cost=counters.get(
            "executor.cost_units", execution.metrics.cost_units
        ),
        exec_time=phases.get("bench.execute", execution.wall_time),
        used_cses=list(stats.used_cses),
        candidate_ids=list(stats.candidate_ids),
        snapshot=snapshot,
        phase_seconds=phases,
        q_error_mean=(sum(errors) / len(errors)) if errors else 1.0,
        q_error_max=max(errors) if errors else 1.0,
    )


def run_scenario(
    database: Database,
    sql: str,
    modes: Sequence[str] = (MODE_NO_CSE, MODE_CSE, MODE_NO_HEURISTICS),
) -> List[ScenarioResult]:
    """Run a workload in all requested modes."""
    return [run_mode(database, sql, mode) for mode in modes]


def format_table(
    title: str,
    results: Sequence[ScenarioResult],
    paper_reference: Optional[Dict[str, str]] = None,
) -> str:
    """Render results the way the paper's tables read."""
    headers = [""] + [r.mode for r in results]
    rows = [
        ["# of CSEs [CSE Opts]"] + [r.cses_cell for r in results],
        ["Optimization time (secs)"]
        + [f"{r.optimization_time:.3f}" for r in results],
        ["Estimated cost"] + [f"{r.est_cost:.2f}" for r in results],
        ["Execution cost (units)"] + [f"{r.exec_cost:.2f}" for r in results],
        ["Execution time (secs)"] + [f"{r.exec_time:.3f}" for r in results],
        ["Cardinality q-error (mean/max)"]
        + [f"{r.q_error_mean:.2f} / {r.q_error_max:.2f}" for r in results],
        ["Spools (writes/reads)"]
        + [
            f"{r.counter('executor.spools_materialized'):g} / "
            f"{r.counter('executor.spool_reads'):g}"
            for r in results
        ],
    ]
    widths = [
        max(len(str(line[i])) for line in [headers] + rows)
        for i in range(len(headers))
    ]

    def fmt(line):
        return " | ".join(str(v).ljust(w) for v, w in zip(line, widths))

    out = [f"== {title} ==", fmt(headers), "-+-".join("-" * w for w in widths)]
    out.extend(fmt(line) for line in rows)
    if paper_reference:
        out.append("")
        out.append("paper reference: " + "; ".join(
            f"{k}: {v}" for k, v in paper_reference.items()
        ))
    return "\n".join(out)


def speedup(results: Sequence[ScenarioResult]) -> float:
    """Execution-cost reduction of "Using CSEs" vs "No CSE"."""
    by_mode = {r.mode: r for r in results}
    return by_mode[MODE_NO_CSE].exec_cost / by_mode[MODE_CSE].exec_cost
