"""Shared machinery for the experiment benchmarks.

Each experiment runs a workload in the paper's three modes and reports the
same rows its tables do:

* ``# of CSEs [CSE Opts]`` — candidates given to the optimizer and the
  number of CSE optimization passes,
* ``Optimization time`` — wall-clock seconds in the optimizer,
* ``Estimated cost`` — the optimizer's cost for the chosen plan,
* ``Execution cost`` — deterministic cost units measured by the executor
  (the hardware-independent stand-in for the paper's execution seconds),
* ``Execution time`` — wall-clock seconds in the executor.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..api import Session
from ..optimizer.options import OptimizerOptions
from ..storage.database import Database

MODE_NO_CSE = "No CSE"
MODE_CSE = "Using CSEs"
MODE_NO_HEURISTICS = "Using CSEs (no heuristics)"


def bench_scale_factor(default: float = 0.01) -> float:
    """Scale factor for benchmarks; override with REPRO_BENCH_SF."""
    return float(os.environ.get("REPRO_BENCH_SF", default))


def options_for(mode: str) -> OptimizerOptions:
    """Optimizer options for one of the paper's three modes."""
    if mode == MODE_NO_CSE:
        return OptimizerOptions(enable_cse=False)
    if mode == MODE_CSE:
        return OptimizerOptions()
    if mode == MODE_NO_HEURISTICS:
        return OptimizerOptions(
            enable_heuristics=False, max_cse_optimizations=16
        )
    raise ValueError(f"unknown mode {mode!r}")


@dataclass
class ScenarioResult:
    """One mode's measurements for one workload."""

    mode: str
    candidates: int
    cse_optimizations: int
    optimization_time: float
    est_cost: float
    exec_cost: float
    exec_time: float
    used_cses: List[str] = field(default_factory=list)
    candidate_ids: List[str] = field(default_factory=list)

    @property
    def cses_cell(self) -> str:
        """The table cell '<candidates> [<passes>]' (N/A without CSEs)."""
        if self.mode == MODE_NO_CSE:
            return "N/A"
        return f"{self.candidates} [{self.cse_optimizations}]"


def run_mode(database: Database, sql: str, mode: str) -> ScenarioResult:
    """Optimize + execute one workload in one mode."""
    session = Session(database, options_for(mode))
    outcome = session.execute(sql)
    stats = outcome.optimization.stats
    return ScenarioResult(
        mode=mode,
        candidates=stats.candidates_generated,
        cse_optimizations=stats.cse_optimizations,
        optimization_time=stats.optimization_time,
        est_cost=outcome.est_cost,
        exec_cost=outcome.execution.metrics.cost_units,
        exec_time=outcome.execution.wall_time,
        used_cses=list(stats.used_cses),
        candidate_ids=list(stats.candidate_ids),
    )


def run_scenario(
    database: Database,
    sql: str,
    modes: Sequence[str] = (MODE_NO_CSE, MODE_CSE, MODE_NO_HEURISTICS),
) -> List[ScenarioResult]:
    """Run a workload in all requested modes."""
    return [run_mode(database, sql, mode) for mode in modes]


def format_table(
    title: str,
    results: Sequence[ScenarioResult],
    paper_reference: Optional[Dict[str, str]] = None,
) -> str:
    """Render results the way the paper's tables read."""
    headers = [""] + [r.mode for r in results]
    rows = [
        ["# of CSEs [CSE Opts]"] + [r.cses_cell for r in results],
        ["Optimization time (secs)"]
        + [f"{r.optimization_time:.3f}" for r in results],
        ["Estimated cost"] + [f"{r.est_cost:.2f}" for r in results],
        ["Execution cost (units)"] + [f"{r.exec_cost:.2f}" for r in results],
        ["Execution time (secs)"] + [f"{r.exec_time:.3f}" for r in results],
    ]
    widths = [
        max(len(str(line[i])) for line in [headers] + rows)
        for i in range(len(headers))
    ]

    def fmt(line):
        return " | ".join(str(v).ljust(w) for v, w in zip(line, widths))

    out = [f"== {title} ==", fmt(headers), "-+-".join("-" * w for w in widths)]
    out.extend(fmt(line) for line in rows)
    if paper_reference:
        out.append("")
        out.append("paper reference: " + "; ".join(
            f"{k}: {v}" for k, v in paper_reference.items()
        ))
    return "\n".join(out)


def speedup(results: Sequence[ScenarioResult]) -> float:
    """Execution-cost reduction of "Using CSEs" vs "No CSE"."""
    by_mode = {r.mode: r for r in results}
    return by_mode[MODE_NO_CSE].exec_cost / by_mode[MODE_CSE].exec_cost
