"""Consolidated experiment report.

``python -m repro bench all`` (or :func:`generate_report`) runs every §6
experiment at the requested scale factor and renders one markdown report —
the machine-generated companion to EXPERIMENTS.md.
"""

from __future__ import annotations

import io
import time
from typing import List, Optional

import numpy as np

from ..api import Session
from ..optimizer.options import OptimizerOptions
from ..storage.database import Database
from ..workloads import (
    complex_join_batch,
    example1_batch,
    example1_with_q4,
    nested_query,
    scaleup_batch,
)
from .harness import (
    MODE_CSE,
    MODE_NO_CSE,
    MODE_NO_HEURISTICS,
    format_table,
    run_scenario,
    speedup,
)


def _markdown_table(results) -> List[str]:
    lines = [
        "| | " + " | ".join(r.mode for r in results) + " |",
        "|---|" + "---|" * len(results),
        "| # of CSEs [opts] | " + " | ".join(r.cses_cell for r in results) + " |",
        "| optimization time (s) | "
        + " | ".join(f"{r.optimization_time:.3f}" for r in results) + " |",
        "| estimated cost | "
        + " | ".join(f"{r.est_cost:.1f}" for r in results) + " |",
        "| execution cost (units) | "
        + " | ".join(f"{r.exec_cost:.1f}" for r in results) + " |",
        "| execution time (s) | "
        + " | ".join(f"{r.exec_time:.3f}" for r in results) + " |",
        "| cardinality q-error (mean/max) | "
        + " | ".join(
            f"{r.q_error_mean:.2f} / {r.q_error_max:.2f}" for r in results
        )
        + " |",
        "| spools (writes/reads) | "
        + " | ".join(
            f"{r.counter('executor.spools_materialized'):g} / "
            f"{r.counter('executor.spool_reads'):g}"
            for r in results
        )
        + " |",
    ]
    return lines


def generate_report(
    database: Database,
    scale_factor: float,
    include_table4: bool = True,
    include_maintenance: bool = True,
) -> str:
    """Run all experiments and return the markdown report."""
    out: List[str] = [
        "# Experiment report",
        "",
        f"Synthetic TPC-H at scale factor {scale_factor} "
        f"(lineitem: {database.table('lineitem').row_count} rows).",
        "",
    ]

    experiments = [
        ("Table 1 — query batch (Q1, Q2, Q3)", example1_batch()),
        ("Table 2 — query batch (Q1..Q4)", example1_with_q4()),
        ("Table 3 — nested query", nested_query()),
    ]
    if include_table4:
        experiments.append(("Table 4 — complex joins", complex_join_batch()))

    for title, sql in experiments:
        results = run_scenario(database, sql)
        out.append(f"## {title}")
        out.append("")
        out.extend(_markdown_table(results))
        out.append("")
        out.append(f"execution-cost reduction: **{speedup(results):.2f}x**")
        out.append("")

    # Figure 8 series.
    out.append("## Figure 8 — scale-up")
    out.append("")
    out.append("| queries | est cost no CSE | est cost CSE | benefit | opt time |")
    out.append("|---|---|---|---|---|")
    for n in (2, 4, 6, 8, 10):
        sql = scaleup_batch(n)
        base = Session(database, OptimizerOptions(enable_cse=False)).optimize(sql)
        shared = Session(database, OptimizerOptions()).optimize(sql)
        out.append(
            f"| {n} | {base.est_cost:.1f} | {shared.est_cost:.1f} | "
            f"{base.est_cost - shared.est_cost:.1f} | "
            f"{shared.stats.optimization_time:.3f}s |"
        )
    out.append("")

    if include_maintenance:
        out.append("## View maintenance (§6.4)")
        out.append("")
        out.append(_maintenance_section(scale_factor))
        out.append("")
    return "\n".join(out)


def _maintenance_section(scale_factor: float) -> str:
    from ..catalog.tpch import build_tpch_database
    from ..views.maintenance import MaintenancePlanner
    from ..views.materialized import ViewManager
    from ..workloads.example1 import Q1_SQL, Q2_SQL, Q3_SQL

    def setup(options):
        db = build_tpch_database(scale_factor=min(scale_factor, 0.005))
        manager = ViewManager(db)
        for i, sql in enumerate((Q1_SQL, Q2_SQL, Q3_SQL), 1):
            manager.create_view(f"mv{i}", sql)
        manager.refresh_all()
        return MaintenancePlanner(db, manager, options)

    rng = np.random.default_rng(31)
    segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
    rows = [
        (
            60_000_000 + i,
            f"Customer#{60_000_000 + i}",
            int(rng.integers(0, 25)),
            segments[int(rng.integers(0, 5))],
            float(np.round(rng.uniform(0, 1000), 2)),
        )
        for i in range(100)
    ]
    with_cse = setup(OptimizerOptions()).apply_insert("customer", rows)
    without = setup(OptimizerOptions(enable_cse=False)).apply_insert(
        "customer", rows
    )
    ratio = without.measured_cost / with_cse.measured_cost
    return (
        f"three materialized views, 100-row customer insert: "
        f"{without.measured_cost:.1f} units without CSEs, "
        f"{with_cse.measured_cost:.1f} with — **{ratio:.2f}x** "
        f"(shared: {with_cse.optimization.stats.used_cses})"
    )
