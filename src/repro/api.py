"""High-level API: the :class:`Session` facade.

Typical use::

    from repro import Session

    session = Session.tpch(scale_factor=0.01)
    outcome = session.execute('''
        select c_nationkey, sum(l_extendedprice) as le
        from customer, orders, lineitem
        where c_custkey = o_custkey and o_orderkey = l_orderkey
        group by c_nationkey;

        select c_mktsegment, sum(l_quantity) as lq
        from customer, orders, lineitem
        where c_custkey = o_custkey and o_orderkey = l_orderkey
        group by c_mktsegment
    ''')
    print(outcome.optimization.stats.used_cses)   # shared subexpressions
    print(outcome.execution.query("Q1").rows[:5])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from .errors import ReproError
from .executor.executor import BatchResult, Executor
from .logical.blocks import BoundBatch, BoundQuery
from .obs import NULL_REGISTRY, NULL_TRACER, MetricsRegistry, Tracer
from .optimizer.cost import CostModel
from .optimizer.engine import OptimizationResult, Optimizer
from .optimizer.options import OptimizerOptions
from .sql.binder import Binder
from .sql.parser import parse_batch
from .storage.database import Database


@dataclass
class ExecutionOutcome:
    """The result of :meth:`Session.execute`: plans plus rows plus metrics."""

    optimization: OptimizationResult
    execution: BatchResult

    @property
    def est_cost(self) -> float:
        """The optimizer's estimated cost of the chosen bundle."""
        return self.optimization.est_cost

    @property
    def measured_cost(self) -> float:
        """Deterministic cost units measured during execution."""
        return self.execution.metrics.cost_units


class Session:
    """A connection-like facade over a database, optimizer, and executor."""

    def __init__(
        self,
        database: Database,
        options: Optional[OptimizerOptions] = None,
        cost_model: Optional[CostModel] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.database = database
        self.options = options or OptimizerOptions()
        self.cost_model = cost_model or CostModel()
        #: observability sinks shared by every optimize/execute on this
        #: session; the null defaults make instrumentation a no-op.
        self.registry = registry or NULL_REGISTRY
        self.tracer = tracer or NULL_TRACER

    # -- constructors ------------------------------------------------------

    @classmethod
    def tpch(
        cls,
        scale_factor: float = 0.01,
        seed: int = 20070612,
        options: Optional[OptimizerOptions] = None,
    ) -> "Session":
        """A session over a freshly generated TPC-H database."""
        from .catalog.tpch import build_tpch_database

        return cls(build_tpch_database(scale_factor, seed), options)

    # -- binding -------------------------------------------------------------

    def bind(
        self, sql: str, names: Optional[Sequence[str]] = None
    ) -> BoundBatch:
        """Parse and bind a semicolon-separated query batch."""
        return Binder(self.database.catalog).bind_batch(parse_batch(sql), names)

    def _as_batch(self, target: Union[str, BoundBatch, BoundQuery]) -> BoundBatch:
        if isinstance(target, str):
            return self.bind(target)
        if isinstance(target, BoundQuery):
            return BoundBatch(queries=[target])
        if isinstance(target, BoundBatch):
            return target
        raise ReproError(f"cannot optimize {type(target).__name__}")

    # -- optimization & execution ------------------------------------------

    def optimize(
        self, target: Union[str, BoundBatch, BoundQuery]
    ) -> OptimizationResult:
        """Optimize a batch (CSE detection/exploitation per session options)."""
        batch = self._as_batch(target)
        optimizer = Optimizer(
            self.database,
            self.options,
            self.cost_model,
            registry=self.registry,
            tracer=self.tracer,
        )
        return optimizer.optimize(batch)

    def execute(
        self,
        target: Union[str, BoundBatch, BoundQuery],
        collect_op_stats: bool = False,
    ) -> ExecutionOutcome:
        """Optimize then execute; returns plans, rows, and metrics."""
        result = self.optimize(target)
        execution = self.execute_bundle(result, collect_op_stats)
        return ExecutionOutcome(optimization=result, execution=execution)

    def execute_bundle(
        self, result: OptimizationResult, collect_op_stats: bool = False
    ) -> BatchResult:
        """Execute a previously optimized bundle."""
        executor = Executor(
            self.database, self.cost_model, registry=self.registry
        )
        return executor.execute(result.bundle, collect_op_stats)

    def explain(
        self,
        target: Union[str, BoundBatch, BoundQuery],
        costs: bool = False,
        analyze: bool = False,
    ) -> str:
        """The optimized plan as text, including any shared spools.

        With ``costs=True`` every operator is annotated with its local and
        cumulative estimated cost. With ``analyze=True`` the bundle is
        *executed* and each operator additionally reports actual rows and
        wall time, plus spool cost attribution and optimizer counters.
        """
        result = self.optimize(target)
        if analyze:
            from .optimizer.explain import explain_analyze

            return explain_analyze(
                self.database,
                result,
                self.cost_model,
                registry=self.registry,
            )
        header = [
            f"estimated cost: {result.est_cost:.2f} "
            f"(without CSEs: {result.stats.est_cost_no_cse:.2f})",
            f"candidates: {result.stats.candidate_ids}"
            f" used: {result.stats.used_cses}",
        ]
        if costs:
            from .optimizer.explain import explain_with_costs

            body = explain_with_costs(
                self.database, result.bundle, self.cost_model
            )
        else:
            body = result.bundle.describe()
        return "\n".join(header) + "\n" + body
