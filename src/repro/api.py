"""High-level API: the :class:`Session` facade.

Typical use::

    from repro import Session

    session = Session.tpch(scale_factor=0.01)
    outcome = session.execute('''
        select c_nationkey, sum(l_extendedprice) as le
        from customer, orders, lineitem
        where c_custkey = o_custkey and o_orderkey = l_orderkey
        group by c_nationkey;

        select c_mktsegment, sum(l_quantity) as lq
        from customer, orders, lineitem
        where c_custkey = o_custkey and o_orderkey = l_orderkey
        group by c_mktsegment
    ''')
    print(outcome.optimization.stats.used_cses)   # shared subexpressions
    print(outcome.execution.query("Q1").rows[:5])
"""

from __future__ import annotations

import weakref
from contextlib import nullcontext
from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING, Optional, Sequence, Union

from .errors import (
    BudgetExceededError,
    OptimizerError,
    OptimizerTimeoutError,
    QueryTimeoutError,
    ReproError,
)
from .executor.executor import BatchResult, Executor
from .logical.blocks import BoundBatch, BoundQuery
from .obs import (
    NULL_JOURNAL,
    NULL_QUERY_LOG,
    NULL_REGISTRY,
    NULL_TRACER,
    DecisionJournal,
    MetricsRegistry,
    QueryLog,
    SharingLedger,
    TelemetryServer,
    Tracer,
    build_ledger,
    estimated_ledger,
)
from .optimizer.cost import CostModel
from .optimizer.engine import OptimizationResult, Optimizer
from .optimizer.options import OptimizerOptions
from .serve.governor import CancellationToken, QueryBudget, ResourceGovernor
from .sql.binder import Binder
from .sql.parser import parse_batch
from .storage.database import Database

if TYPE_CHECKING:  # deferred: api → serve.coordinator → api cycle
    from .serve.coordinator import SharedBatchCoordinator

#: Workers used by ``execute(..., parallel=True)`` on a serial session.
DEFAULT_PARALLEL_WORKERS = 4


@dataclass
class ExecutionOutcome:
    """The result of :meth:`Session.execute`: plans plus rows plus metrics."""

    optimization: OptimizationResult
    execution: BatchResult
    #: True when the optimization came from the session's plan cache (the
    #: optimizer did not run for this call).
    plan_cache_hit: bool = False
    #: True when the governor degraded this call to the no-sharing
    #: baseline (optimizer fallback or spool-budget fallback).
    degraded: bool = False
    #: why the call degraded: ``"optimizer_error"``,
    #: ``"optimizer_deadline"``, or ``"spool_budget"`` (None when not
    #: degraded).
    fallback_reason: Optional[str] = None
    #: the sharing-economics ledger for this batch (estimated vs measured
    #: Def 5.1 savings per shared spool and per query); None only when the
    #: batch was never executed.
    ledger: Optional[SharingLedger] = None

    @property
    def est_cost(self) -> float:
        """The optimizer's estimated cost of the chosen bundle."""
        return self.optimization.est_cost

    @property
    def measured_cost(self) -> float:
        """Deterministic cost units measured during execution."""
        return self.execution.metrics.cost_units


class Session:
    """A connection-like facade over a database, optimizer, and executor.

    ``workers`` sets the default execution parallelism: with ``workers=N``
    (N > 1) every :meth:`execute` schedules the bundle's spool DAG on N
    threads. ``plan_cache_size`` bounds the per-session LRU plan cache
    (``0`` disables caching): a warm :meth:`execute` skips optimization
    entirely, and any mutation of the underlying :class:`Database`
    invalidates the affected entries.

    Telemetry sinks (all optional, all no-ops by default):

    * ``registry`` — counters/timers/histograms; ``telemetry_port`` starts
      an HTTP server exposing it at ``/metrics`` in Prometheus text format
      (pass ``0`` for an ephemeral port; see ``session.telemetry.url``).
      Setting a port with no registry creates one implicitly.
    * ``query_log`` — one structured JSONL record per :meth:`execute`;
      records over the log's ``slow_ms`` threshold carry the full EXPLAIN
      ANALYZE tree of the run that was measured (no re-execution).
    * ``journal`` — the optimizer's decision journal: every candidate's
      lifecycle from signature bucket to keep/reject verdict. Also
      available per-call via ``explain(..., why=True)``.
    """

    def __init__(
        self,
        database: Database,
        options: Optional[OptimizerOptions] = None,
        cost_model: Optional[CostModel] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace_path: Optional[str] = None,
        workers: int = 1,
        plan_cache_size: int = 64,
        journal: Optional[DecisionJournal] = None,
        query_log: Optional[QueryLog] = None,
        telemetry_port: Optional[int] = None,
        governor: Optional[ResourceGovernor] = None,
        default_budget: Optional[QueryBudget] = None,
        shared_scans: bool = True,
        morsel_rows: int = 4096,
        coordinator: Optional["SharedBatchCoordinator"] = None,
        share_window_ms: float = 0.0,
    ) -> None:
        self.database = database
        self.options = options or OptimizerOptions()
        self.cost_model = cost_model or CostModel()
        #: share one physical scan per (table, column-set) group per batch.
        self.shared_scans = shared_scans
        #: rows per morsel streamed through fused pipelines (<=0: whole
        #: frame in one morsel).
        self.morsel_rows = morsel_rows
        #: observability sinks shared by every optimize/execute on this
        #: session; the null defaults make instrumentation a no-op.
        if registry is None and telemetry_port is not None:
            registry = MetricsRegistry()
        self.registry = registry or NULL_REGISTRY
        # ``trace_path`` binds a fresh tracer to a JSONL file with the full
        # flush/close lifecycle (closed by Session.close / the context
        # manager, finalized at interpreter exit as a last resort).
        if tracer is None and trace_path is not None:
            tracer = Tracer(path=trace_path)
        self.tracer = tracer or NULL_TRACER
        # Explicit None checks: journals and query logs are sized containers,
        # so a fresh (empty) one is falsy and `or` would drop it.
        self.journal = journal if journal is not None else NULL_JOURNAL
        self.query_log = (
            query_log if query_log is not None else NULL_QUERY_LOG
        )
        self.telemetry: Optional[TelemetryServer] = None
        if telemetry_port is not None:
            self.telemetry = TelemetryServer(
                self.registry, port=telemetry_port
            ).start()
        #: admission control shared across this session's executes (and any
        #: other sessions holding the same governor). A governor built with
        #: the default null registry inherits the session's, so its
        #: ``governor.*`` metrics flow through the same Prometheus path.
        self.governor = governor
        if (
            governor is not None
            and governor.registry is NULL_REGISTRY
            and self.registry is not NULL_REGISTRY
        ):
            governor.registry = self.registry
        #: budget applied to every :meth:`execute` that does not pass its
        #: own (None = ungoverned).
        self.default_budget = default_budget
        #: cross-session micro-batching (see
        #: :class:`~repro.serve.coordinator.SharedBatchCoordinator`). Pass
        #: a coordinator to share windows across sessions, or just
        #: ``share_window_ms`` for a session-private one. Like the
        #: governor, a coordinator built with the null registry inherits
        #: the session's.
        if coordinator is None and share_window_ms > 0:
            from .serve.coordinator import SharedBatchCoordinator

            coordinator = SharedBatchCoordinator(window_ms=share_window_ms)
        self.coordinator = coordinator
        if (
            coordinator is not None
            and coordinator.registry is NULL_REGISTRY
            and self.registry is not NULL_REGISTRY
        ):
            coordinator.registry = self.registry
        self.workers = max(1, workers)
        self.plan_cache = None
        if plan_cache_size > 0:
            from .serve import PlanCache

            self.plan_cache = PlanCache(
                plan_cache_size, registry=self.registry
            )
            _register_invalidation(database, self.plan_cache)

    # -- constructors ------------------------------------------------------

    @classmethod
    def tpch(
        cls,
        scale_factor: float = 0.01,
        seed: int = 20070612,
        options: Optional[OptimizerOptions] = None,
        **kwargs,
    ) -> "Session":
        """A session over a freshly generated TPC-H database.

        Keyword arguments (``cost_model``, ``registry``, ``tracer``,
        ``workers``, ``plan_cache_size``, …) are forwarded to the
        constructor unchanged."""
        from .catalog.tpch import build_tpch_database

        return cls(build_tpch_database(scale_factor, seed), options, **kwargs)

    # -- binding -------------------------------------------------------------

    def bind(
        self, sql: str, names: Optional[Sequence[str]] = None
    ) -> BoundBatch:
        """Parse and bind a semicolon-separated query batch."""
        return Binder(self.database.catalog).bind_batch(parse_batch(sql), names)

    def _as_batch(self, target: Union[str, BoundBatch, BoundQuery]) -> BoundBatch:
        if isinstance(target, str):
            return self.bind(target)
        if isinstance(target, BoundQuery):
            return BoundBatch(queries=[target])
        if isinstance(target, BoundBatch):
            return target
        raise ReproError(f"cannot optimize {type(target).__name__}")

    # -- optimization & execution ------------------------------------------

    def optimize(
        self,
        target: Union[str, BoundBatch, BoundQuery],
        journal: Optional[DecisionJournal] = None,
        deadline: Optional[float] = None,
    ) -> OptimizationResult:
        """Optimize a batch (CSE detection/exploitation per session options).

        ``journal`` overrides the session's decision journal for this call
        (``explain(why=True)`` uses this to scope the report to one batch).
        ``deadline`` is an absolute :func:`time.monotonic` instant after
        which the optimizer raises
        :class:`~repro.errors.OptimizerTimeoutError` at its next phase
        boundary."""
        batch = self._as_batch(target)
        optimizer = Optimizer(
            self.database,
            self.options,
            self.cost_model,
            registry=self.registry,
            tracer=self.tracer,
            journal=journal if journal is not None else self.journal,
            deadline=deadline,
        )
        return optimizer.optimize(batch)

    def execute(
        self,
        target: Union[str, BoundBatch, BoundQuery],
        collect_op_stats: bool = False,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
        budget: Optional[QueryBudget] = None,
    ) -> ExecutionOutcome:
        """Optimize (or fetch a cached plan) then execute.

        ``parallel=True`` schedules the bundle's spool DAG on a thread
        pool (``workers`` threads; defaults to the session's ``workers``,
        or :data:`DEFAULT_PARALLEL_WORKERS` on a serial session);
        ``parallel=False`` forces serial execution. With the default
        ``parallel=None``, the session's ``workers`` setting decides.

        ``budget`` (default: the session's ``default_budget``) governs the
        call: its deadline and spool/row limits are checked cooperatively
        throughout optimization and execution. Optimizer failures and
        budget busts degrade to the paper's no-sharing baseline plan
        (``outcome.degraded``); deadline expiry raises
        :class:`~repro.errors.QueryTimeoutError`. When the session has a
        :class:`~repro.serve.ResourceGovernor`, the call first passes
        admission control (which may raise
        :class:`~repro.errors.AdmissionError`)."""
        batch = self._as_batch(target)
        # A slow-query threshold means we may need the analyzed tree of
        # *this* run; collect operator stats up front rather than re-run.
        if self.query_log.enabled and self.query_log.slow_ms is not None:
            collect_op_stats = True
        if budget is None:
            budget = self.default_budget
        start = perf_counter()
        admit = (
            self.governor.admit() if self.governor is not None
            else nullcontext()
        )
        with admit:
            # One root span per batch: optimization, governor events, and
            # every executor task (across worker threads) nest under it.
            with self.tracer.span("batch", queries=len(batch.queries)):
                shared = self._try_shared(
                    target, batch, budget, collect_op_stats
                )
                if shared is not None:
                    result = shared.optimization
                    execution = shared.execution
                    cache_hit = shared.plan_cache_hit
                    reason = None
                    ledger = shared.ledger
                else:
                    token = budget.start() if budget is not None else None
                    result, cache_hit, opt_fallback = self._optimize_governed(
                        batch, budget, token
                    )
                    execution, exec_fallback = self._execute_governed(
                        result, collect_op_stats, parallel, workers, budget,
                        token,
                    )
                    reason = opt_fallback or exec_fallback
                    ledger = self._build_ledger(result, execution, reason)
        wall = perf_counter() - start
        self.registry.observe("serve.query_seconds", wall)
        outcome = ExecutionOutcome(
            optimization=result,
            execution=execution,
            plan_cache_hit=cache_hit,
            degraded=reason is not None,
            fallback_reason=reason,
            ledger=ledger,
        )
        self._publish_ledger(outcome.ledger)
        if self.query_log.enabled:
            self._log_query(batch, outcome, wall)
        return outcome

    def _try_shared(
        self,
        target: Union[str, BoundBatch, BoundQuery],
        batch: BoundBatch,
        budget: Optional[QueryBudget],
        collect_op_stats: bool,
    ):
        """Offer the call to the cross-session coordinator, if eligible.

        Only raw SQL targets are offered (the coordinator re-binds the
        concatenated text), and only without deadline budgets: a wall-clock
        deadline cannot be meaningfully charged against a shared window
        another session opened. Row/spool budgets *are* eligible — the
        coordinator charges them per consumer exactly once. Returns the
        consumer's :class:`~repro.serve.coordinator.SharedOutcome` or
        ``None`` (run on the ordinary path)."""
        if self.coordinator is None or not self.coordinator.enabled:
            return None
        if not isinstance(target, str) or (
            budget is not None
            and (
                budget.deadline_ms is not None
                or budget.optimizer_deadline_ms is not None
            )
        ):
            self.coordinator.note_bypass()
            return None
        return self.coordinator.submit(
            self, target, batch,
            budget=budget, collect_op_stats=collect_op_stats,
        )

    def _build_ledger(
        self,
        result: OptimizationResult,
        execution: BatchResult,
        fallback_reason: Optional[str],
    ) -> SharingLedger:
        """The batch's sharing ledger (estimated vs measured Def 5.1)."""
        from .serve.schedule import query_spool_read_counts

        # A spool-budget fallback executed the no-sharing baseline bundle,
        # so planned reads must come from the bundle that actually ran.
        bundle = (
            result.base_bundle
            if fallback_reason == "spool_budget"
            else result.bundle
        )
        return build_ledger(
            result.candidates,
            execution.metrics.spool_stats,
            query_spool_read_counts(bundle),
            scan_stats=execution.metrics.scan_stats,
        )

    def _publish_ledger(self, ledger: Optional[SharingLedger]) -> None:
        """Mirror a batch ledger into metrics, journal, and trace."""
        if ledger is None or not (ledger.spools or ledger.scans):
            return
        ledger.publish(self.registry)
        for cse_id in ledger.negative_spools:
            entry = ledger.spool(cse_id)
            payload = {
                "spool": cse_id,
                "est_savings": round(entry.est_savings, 4),
                "measured_savings": round(entry.measured_savings, 4),
                "consumers": entry.consumers,
            }
            # Sharing that lost money is the input adaptive
            # re-optimization needs — make it loud on every channel.
            if self.journal.enabled:
                self.journal.event("negative_spool_benefit", **payload)
            self.tracer.event("negative_spool_benefit", **payload)

    def _optimize_governed(
        self,
        batch: BoundBatch,
        budget: Optional[QueryBudget],
        token: Optional[CancellationToken],
    ) -> "tuple[OptimizationResult, bool, Optional[str]]":
        """Optimize under the budget's deadline, degrading on failure.

        Returns ``(result, cache_hit, fallback_reason)``. An
        :class:`OptimizerError` (or optimizer-deadline expiry) retries
        with CSE exploitation disabled — the no-sharing plan is always
        valid, so sharing machinery failures never fail the batch. The
        retry bypasses the plan cache entirely: a degraded plan is never
        stored under the batch's normal fingerprint."""
        if budget is None:
            result, cache_hit = self._cached_optimize(batch)
            return result, cache_hit, None
        try:
            result, cache_hit = self._cached_optimize(
                batch, deadline=budget.optimizer_deadline(token)
            )
            return result, cache_hit, None
        except OptimizerTimeoutError as error:
            if not budget.allow_fallback:
                raise QueryTimeoutError(str(error)) from error
            reason, cause = "optimizer_deadline", error
        except OptimizerError as error:
            if not budget.allow_fallback:
                raise
            reason, cause = "optimizer_error", error
        if token is not None:
            # Only the optimizer's own allowance is fallback-eligible; an
            # expired overall deadline fails the batch here and now.
            token.check()
        result = self._fallback_optimize(batch, token, reason, cause)
        return result, False, reason

    def _fallback_optimize(
        self,
        batch: BoundBatch,
        token: Optional[CancellationToken],
        reason: str,
        cause: BaseException,
    ) -> OptimizationResult:
        """Re-optimize with CSEs disabled (the paper's baseline plan)."""
        self.registry.counter("governor.fallbacks")
        self.registry.counter(f"governor.fallback.{reason}")
        if self.journal.enabled:
            self.journal.event(
                "fallback", stage="optimizer", reason=reason,
                detail=str(cause),
            )
        self.tracer.event("governor_fallback", stage="optimizer",
                          reason=reason)
        optimizer = Optimizer(
            self.database,
            replace(self.options, enable_cse=False),
            self.cost_model,
            registry=self.registry,
            tracer=self.tracer,
            journal=self.journal,
            # The retry still honours the overall deadline (not the spent
            # optimizer allowance): without CSE enumeration it is cheap.
            deadline=token.deadline if token is not None else None,
        )
        start = perf_counter()
        try:
            result = optimizer.optimize(batch)
        except OptimizerTimeoutError as error:
            raise QueryTimeoutError(
                "query deadline exceeded during fallback optimization"
            ) from error
        self.registry.observe(
            "governor.fallback_retry_seconds", perf_counter() - start
        )
        return result

    def _execute_governed(
        self,
        result: OptimizationResult,
        collect_op_stats: bool,
        parallel: Optional[bool],
        workers: Optional[int],
        budget: Optional[QueryBudget],
        token: Optional[CancellationToken],
    ) -> "tuple[BatchResult, Optional[str]]":
        """Execute under the token, degrading on a budget bust.

        Returns ``(execution, fallback_reason)``. A
        :class:`BudgetExceededError` (spool or row budget) re-executes the
        no-sharing baseline bundle serially: it materializes no shared
        spools, so the spool budget cannot re-trip; the retry token keeps
        the original absolute deadline, so the whole call stays bounded.
        Deadline expiry (:class:`QueryTimeoutError`) always propagates."""
        try:
            execution = self.execute_bundle(
                result, collect_op_stats, parallel=parallel,
                workers=workers, token=token,
            )
            return execution, None
        except BudgetExceededError as error:
            if budget is None or not budget.allow_fallback:
                raise
            cause = error
        self.registry.counter("governor.fallbacks")
        self.registry.counter("governor.fallback.spool_budget")
        if self.journal.enabled:
            self.journal.event(
                "fallback", stage="execution", reason="spool_budget",
                detail=str(cause),
            )
        self.tracer.event("governor_fallback", stage="execution",
                          reason="spool_budget")
        start = perf_counter()
        execution = self.execute_bundle(
            result,
            collect_op_stats,
            parallel=False,
            token=token.for_retry() if token is not None else None,
            bundle=result.base_bundle,
        )
        self.registry.observe(
            "governor.fallback_retry_seconds", perf_counter() - start
        )
        return execution, "spool_budget"

    def _log_query(
        self, batch: BoundBatch, outcome: ExecutionOutcome, wall: float
    ) -> None:
        """Append one structured record for an executed batch."""
        from .serve import batch_fingerprint

        stats = outcome.optimization.stats
        metrics = outcome.execution.metrics
        wall_ms = wall * 1000.0
        record = {
            "fingerprint": batch_fingerprint(batch),
            "queries": [q.name for q in batch.queries],
            "plan_cache_hit": outcome.plan_cache_hit,
            "candidates_generated": stats.candidates_generated,
            "candidates_kept": len(stats.used_cses),
            "cses_used": list(stats.used_cses),
            "spool_rows_written": metrics.spool_rows_written,
            "spool_rows_read": metrics.spool_rows_read,
            "estimated_savings": round(
                stats.est_cost_no_cse - stats.est_cost_final, 4
            ),
            "wall_ms": round(wall_ms, 3),
            "rows": sum(r.row_count for r in outcome.execution.results),
            "degraded": outcome.degraded,
        }
        if outcome.fallback_reason is not None:
            record["fallback_reason"] = outcome.fallback_reason
        if outcome.ledger is not None and (
            outcome.ledger.spools or outcome.ledger.scans
        ):
            # The same rounded payload the metrics gauges and EXPLAIN
            # ANALYZE carry, so the three surfaces agree exactly.
            record["ledger"] = outcome.ledger.to_payload()
        if self.query_log.is_slow(wall_ms):
            from .optimizer.explain import render_analyzed_bundle

            record["explain_analyze"] = render_analyzed_bundle(
                self.database,
                outcome.optimization,
                outcome.execution,
                self.cost_model,
                ledger=outcome.ledger,
            )
        self.query_log.record(record)

    def close(self) -> None:
        """Stop the telemetry server and settle the trace file, if any."""
        if self.telemetry is not None:
            self.telemetry.stop()
            self.telemetry = None
        self.tracer.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _cached_optimize(
        self, batch: BoundBatch, deadline: Optional[float] = None
    ) -> "tuple[OptimizationResult, bool]":
        """A (result, was_cache_hit) pair; a hit skips the optimizer.

        A plan optimized under a ``deadline`` is cached only when the
        optimizer *finished* (expiry raises before reaching the put), so
        the cache never holds a partially optimized plan."""
        if self.plan_cache is None:
            return self.optimize(batch, deadline=deadline), False
        from .serve import batch_tables, cache_key

        key = cache_key(batch, self.database, self.options, self.cost_model)
        cached = self.plan_cache.get(key)
        if cached is not None:
            self.tracer.event("plan_cache_hit", fingerprint=key[0][:12])
            return cached, True
        result = self.optimize(batch, deadline=deadline)
        self.plan_cache.put(key, result, batch_tables(batch))
        return result, False

    def _effective_workers(
        self, parallel: Optional[bool], workers: Optional[int]
    ) -> int:
        if parallel is False:
            return 1
        count = workers if workers is not None else self.workers
        if parallel and count <= 1 and workers is None:
            count = DEFAULT_PARALLEL_WORKERS
        return max(1, count)

    def execute_bundle(
        self,
        result: OptimizationResult,
        collect_op_stats: bool = False,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
        token: Optional[CancellationToken] = None,
        bundle=None,
    ) -> BatchResult:
        """Execute a previously optimized bundle (serial or parallel).

        ``token`` arms cooperative deadline/budget checks in the executor;
        ``bundle`` overrides the bundle to run (the governor's fallback
        path uses it to execute ``result.base_bundle``)."""
        count = self._effective_workers(parallel, workers)
        if count > 1:
            from .serve import ParallelExecutor

            executor: Executor = ParallelExecutor(
                self.database,
                self.cost_model,
                registry=self.registry,
                workers=count,
                tracer=self.tracer,
                shared_scans=self.shared_scans,
                morsel_rows=self.morsel_rows,
            )
        else:
            executor = Executor(
                self.database,
                self.cost_model,
                registry=self.registry,
                tracer=self.tracer,
                shared_scans=self.shared_scans,
                morsel_rows=self.morsel_rows,
            )
        return executor.execute(
            bundle if bundle is not None else result.bundle,
            collect_op_stats,
            token=token,
        )

    def explain(
        self,
        target: Union[str, BoundBatch, BoundQuery],
        costs: bool = False,
        analyze: bool = False,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
        why: bool = False,
    ) -> str:
        """The optimized plan as text, including any shared spools.

        With ``costs=True`` every operator is annotated with its local and
        cumulative estimated cost. With ``analyze=True`` the bundle is
        *executed* and each operator additionally reports actual rows and
        wall time, plus spool cost attribution and optimizer counters.
        With ``why=True`` the report instead explains the optimizer's
        decisions: every candidate CSE's lifecycle from signature bucket
        through the H1–H4 heuristics to its keep/reject verdict.
        """
        if why:
            # A fresh journal scopes the report to this batch even when the
            # session carries a long-lived one.
            journal = DecisionJournal()
            result = self.optimize(target, journal=journal)
            header = [
                f"estimated cost: {result.est_cost:.2f} "
                f"(without CSEs: {result.stats.est_cost_no_cse:.2f})",
                f"candidates: {result.stats.candidate_ids}"
                f" used: {result.stats.used_cses}",
                "",
            ]
            report = "\n".join(header) + journal.render_why()
            from .serve.schedule import query_spool_read_counts

            ledger = estimated_ledger(
                result.candidates, query_spool_read_counts(result.bundle)
            )
            if ledger.spools:
                # Plan-time economics only — the batch never ran here, so
                # measured columns are zero by construction.
                report += "\n\n" + ledger.render()
            return report
        result = self.optimize(target)
        if analyze:
            from .optimizer.explain import explain_analyze

            return explain_analyze(
                self.database,
                result,
                self.cost_model,
                registry=self.registry,
                workers=self._effective_workers(parallel, workers),
                shared_scans=self.shared_scans,
                morsel_rows=self.morsel_rows,
            )
        header = [
            f"estimated cost: {result.est_cost:.2f} "
            f"(without CSEs: {result.stats.est_cost_no_cse:.2f})",
            f"candidates: {result.stats.candidate_ids}"
            f" used: {result.stats.used_cses}",
        ]
        if costs:
            from .optimizer.explain import explain_with_costs

            body = explain_with_costs(
                self.database, result.bundle, self.cost_model
            )
        else:
            body = result.bundle.describe()
        return "\n".join(header) + "\n" + body


def _register_invalidation(database: Database, cache) -> None:
    """Hook a plan cache to a database's mutation stream.

    The listener holds the cache weakly so sessions sharing a long-lived
    database (the test fixtures, a server process) do not leak caches:
    once a cache is collected, the first subsequent mutation unregisters
    the listener."""
    cache_ref = weakref.ref(cache)

    def _listener(table):
        target = cache_ref()
        if target is None:
            database.remove_mutation_listener(_listener)
        else:
            target.invalidate(table)

    database.add_mutation_listener(_listener)
