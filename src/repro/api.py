"""High-level API: the :class:`Session` facade.

Typical use::

    from repro import Session

    session = Session.tpch(scale_factor=0.01)
    outcome = session.execute('''
        select c_nationkey, sum(l_extendedprice) as le
        from customer, orders, lineitem
        where c_custkey = o_custkey and o_orderkey = l_orderkey
        group by c_nationkey;

        select c_mktsegment, sum(l_quantity) as lq
        from customer, orders, lineitem
        where c_custkey = o_custkey and o_orderkey = l_orderkey
        group by c_mktsegment
    ''')
    print(outcome.optimization.stats.used_cses)   # shared subexpressions
    print(outcome.execution.query("Q1").rows[:5])
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from .errors import ReproError
from .executor.executor import BatchResult, Executor
from .logical.blocks import BoundBatch, BoundQuery
from .obs import NULL_REGISTRY, NULL_TRACER, MetricsRegistry, Tracer
from .optimizer.cost import CostModel
from .optimizer.engine import OptimizationResult, Optimizer
from .optimizer.options import OptimizerOptions
from .sql.binder import Binder
from .sql.parser import parse_batch
from .storage.database import Database

#: Workers used by ``execute(..., parallel=True)`` on a serial session.
DEFAULT_PARALLEL_WORKERS = 4


@dataclass
class ExecutionOutcome:
    """The result of :meth:`Session.execute`: plans plus rows plus metrics."""

    optimization: OptimizationResult
    execution: BatchResult
    #: True when the optimization came from the session's plan cache (the
    #: optimizer did not run for this call).
    plan_cache_hit: bool = False

    @property
    def est_cost(self) -> float:
        """The optimizer's estimated cost of the chosen bundle."""
        return self.optimization.est_cost

    @property
    def measured_cost(self) -> float:
        """Deterministic cost units measured during execution."""
        return self.execution.metrics.cost_units


class Session:
    """A connection-like facade over a database, optimizer, and executor.

    ``workers`` sets the default execution parallelism: with ``workers=N``
    (N > 1) every :meth:`execute` schedules the bundle's spool DAG on N
    threads. ``plan_cache_size`` bounds the per-session LRU plan cache
    (``0`` disables caching): a warm :meth:`execute` skips optimization
    entirely, and any mutation of the underlying :class:`Database`
    invalidates the affected entries.
    """

    def __init__(
        self,
        database: Database,
        options: Optional[OptimizerOptions] = None,
        cost_model: Optional[CostModel] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        workers: int = 1,
        plan_cache_size: int = 64,
    ) -> None:
        self.database = database
        self.options = options or OptimizerOptions()
        self.cost_model = cost_model or CostModel()
        #: observability sinks shared by every optimize/execute on this
        #: session; the null defaults make instrumentation a no-op.
        self.registry = registry or NULL_REGISTRY
        self.tracer = tracer or NULL_TRACER
        self.workers = max(1, workers)
        self.plan_cache = None
        if plan_cache_size > 0:
            from .serve import PlanCache

            self.plan_cache = PlanCache(
                plan_cache_size, registry=self.registry
            )
            _register_invalidation(database, self.plan_cache)

    # -- constructors ------------------------------------------------------

    @classmethod
    def tpch(
        cls,
        scale_factor: float = 0.01,
        seed: int = 20070612,
        options: Optional[OptimizerOptions] = None,
        **kwargs,
    ) -> "Session":
        """A session over a freshly generated TPC-H database.

        Keyword arguments (``cost_model``, ``registry``, ``tracer``,
        ``workers``, ``plan_cache_size``, …) are forwarded to the
        constructor unchanged."""
        from .catalog.tpch import build_tpch_database

        return cls(build_tpch_database(scale_factor, seed), options, **kwargs)

    # -- binding -------------------------------------------------------------

    def bind(
        self, sql: str, names: Optional[Sequence[str]] = None
    ) -> BoundBatch:
        """Parse and bind a semicolon-separated query batch."""
        return Binder(self.database.catalog).bind_batch(parse_batch(sql), names)

    def _as_batch(self, target: Union[str, BoundBatch, BoundQuery]) -> BoundBatch:
        if isinstance(target, str):
            return self.bind(target)
        if isinstance(target, BoundQuery):
            return BoundBatch(queries=[target])
        if isinstance(target, BoundBatch):
            return target
        raise ReproError(f"cannot optimize {type(target).__name__}")

    # -- optimization & execution ------------------------------------------

    def optimize(
        self, target: Union[str, BoundBatch, BoundQuery]
    ) -> OptimizationResult:
        """Optimize a batch (CSE detection/exploitation per session options)."""
        batch = self._as_batch(target)
        optimizer = Optimizer(
            self.database,
            self.options,
            self.cost_model,
            registry=self.registry,
            tracer=self.tracer,
        )
        return optimizer.optimize(batch)

    def execute(
        self,
        target: Union[str, BoundBatch, BoundQuery],
        collect_op_stats: bool = False,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
    ) -> ExecutionOutcome:
        """Optimize (or fetch a cached plan) then execute.

        ``parallel=True`` schedules the bundle's spool DAG on a thread
        pool (``workers`` threads; defaults to the session's ``workers``,
        or :data:`DEFAULT_PARALLEL_WORKERS` on a serial session);
        ``parallel=False`` forces serial execution. With the default
        ``parallel=None``, the session's ``workers`` setting decides."""
        batch = self._as_batch(target)
        result, cache_hit = self._cached_optimize(batch)
        execution = self.execute_bundle(
            result, collect_op_stats, parallel=parallel, workers=workers
        )
        return ExecutionOutcome(
            optimization=result, execution=execution, plan_cache_hit=cache_hit
        )

    def _cached_optimize(
        self, batch: BoundBatch
    ) -> "tuple[OptimizationResult, bool]":
        """A (result, was_cache_hit) pair; a hit skips the optimizer."""
        if self.plan_cache is None:
            return self.optimize(batch), False
        from .serve import batch_tables, cache_key

        key = cache_key(batch, self.database, self.options, self.cost_model)
        cached = self.plan_cache.get(key)
        if cached is not None:
            self.tracer.event("plan_cache_hit", fingerprint=key[0][:12])
            return cached, True
        result = self.optimize(batch)
        self.plan_cache.put(key, result, batch_tables(batch))
        return result, False

    def _effective_workers(
        self, parallel: Optional[bool], workers: Optional[int]
    ) -> int:
        if parallel is False:
            return 1
        count = workers if workers is not None else self.workers
        if parallel and count <= 1 and workers is None:
            count = DEFAULT_PARALLEL_WORKERS
        return max(1, count)

    def execute_bundle(
        self,
        result: OptimizationResult,
        collect_op_stats: bool = False,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
    ) -> BatchResult:
        """Execute a previously optimized bundle (serial or parallel)."""
        count = self._effective_workers(parallel, workers)
        if count > 1:
            from .serve import ParallelExecutor

            executor: Executor = ParallelExecutor(
                self.database,
                self.cost_model,
                registry=self.registry,
                workers=count,
            )
        else:
            executor = Executor(
                self.database, self.cost_model, registry=self.registry
            )
        return executor.execute(result.bundle, collect_op_stats)

    def explain(
        self,
        target: Union[str, BoundBatch, BoundQuery],
        costs: bool = False,
        analyze: bool = False,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
    ) -> str:
        """The optimized plan as text, including any shared spools.

        With ``costs=True`` every operator is annotated with its local and
        cumulative estimated cost. With ``analyze=True`` the bundle is
        *executed* and each operator additionally reports actual rows and
        wall time, plus spool cost attribution and optimizer counters.
        """
        result = self.optimize(target)
        if analyze:
            from .optimizer.explain import explain_analyze

            return explain_analyze(
                self.database,
                result,
                self.cost_model,
                registry=self.registry,
                workers=self._effective_workers(parallel, workers),
            )
        header = [
            f"estimated cost: {result.est_cost:.2f} "
            f"(without CSEs: {result.stats.est_cost_no_cse:.2f})",
            f"candidates: {result.stats.candidate_ids}"
            f" used: {result.stats.used_cses}",
        ]
        if costs:
            from .optimizer.explain import explain_with_costs

            body = explain_with_costs(
                self.database, result.bundle, self.cost_model
            )
        else:
            body = result.bundle.describe()
        return "\n".join(header) + "\n" + body


def _register_invalidation(database: Database, cache) -> None:
    """Hook a plan cache to a database's mutation stream.

    The listener holds the cache weakly so sessions sharing a long-lived
    database (the test fixtures, a server process) do not leak caches:
    once a cache is collected, the first subsequent mutation unregisters
    the listener."""
    cache_ref = weakref.ref(cache)

    def _listener(table):
        target = cache_ref()
        if target is None:
            database.remove_mutation_listener(_listener)
        else:
            target.invalidate(table)

    database.add_mutation_listener(_listener)
