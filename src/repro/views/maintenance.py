"""Joint maintenance of materialized views (paper §6.4).

When a base table receives inserts, the new rows land in a *delta table*;
each affected view's definition is rewritten with the delta table substituted
for the base table, and the rewritten maintenance queries are optimized
**as one batch**. The delta table participates in table signatures as the
special name ``delta(<base>)`` (paper: "we treat the delta table as a special
table when generating table signatures"), so maintenance expressions for
different views can share covering subexpressions exactly like a user batch.

Only insert maintenance is implemented (the experiment in §6.4 updates
``customer`` with new rows); SUM/COUNT/MIN/MAX aggregates and SPJ views are
self-maintainable under inserts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CatalogError, UnsupportedFeatureError
from ..executor.executor import BatchResult, Executor
from ..executor.runtime import ExecutionMetrics
from ..expr.expressions import AggExpr, AggFunc, ColumnRef, Expr, TableRef
from ..logical.blocks import BoundBatch, BoundQuery, OutputColumn, QueryBlock
from ..optimizer.engine import OptimizationResult, Optimizer
from ..optimizer.options import OptimizerOptions
from ..catalog.schema import ColumnSchema, TableSchema
from ..storage.database import Database
from .materialized import MaterializedView, ViewManager


@dataclass
class MaintenanceOutcome:
    """What one maintenance round did and what it cost."""

    table: str
    delta_rows: int
    affected_views: List[str]
    optimization: OptimizationResult
    execution: BatchResult
    applied_rows: Dict[str, int] = field(default_factory=dict)

    @property
    def est_cost(self) -> float:
        """Estimated cost of the joint maintenance plan."""
        return self.optimization.est_cost

    @property
    def measured_cost(self) -> float:
        """Executed cost units of the maintenance run."""
        return self.execution.metrics.cost_units


def _replace_table(expr: Expr, old: TableRef, new: TableRef) -> Expr:
    mapping: Dict[Expr, Expr] = {}
    for col in expr.columns():
        if col.table_ref == old:
            mapping[col] = ColumnRef(new, col.column, col.data_type)
    return expr.substitute(mapping)


def rewrite_block_with_delta(
    block: QueryBlock, base_table: str, delta_ref_factory
) -> QueryBlock:
    """Substitute the delta table for every instance of ``base_table``."""
    replacements: Dict[TableRef, TableRef] = {}
    new_tables: List[TableRef] = []
    for table_ref in block.tables:
        if table_ref.table.lower() == base_table.lower():
            replacement = delta_ref_factory(table_ref)
            replacements[table_ref] = replacement
            new_tables.append(replacement)
        else:
            new_tables.append(table_ref)
    if not replacements:
        raise CatalogError(
            f"view block {block.name!r} does not reference {base_table!r}"
        )

    def rewrite(expr: Expr) -> Expr:
        for old, new in replacements.items():
            expr = _replace_table(expr, old, new)
        return expr

    return QueryBlock(
        name=block.name,
        tables=tuple(new_tables),
        conjuncts=tuple(rewrite(c) for c in block.conjuncts),
        output=tuple(
            OutputColumn(name=o.name, expr=rewrite(o.expr)) for o in block.output
        ),
        group_keys=tuple(rewrite(k) for k in block.group_keys),  # type: ignore[misc]
        aggregates=tuple(rewrite(a) for a in block.aggregates),  # type: ignore[misc]
        having=tuple(rewrite(h) for h in block.having),
    )


class MaintenancePlanner:
    """Plans and runs joint maintenance for all views affected by inserts."""

    def __init__(
        self,
        database: Database,
        views: ViewManager,
        options: Optional[OptimizerOptions] = None,
    ) -> None:
        self.database = database
        self.views = views
        self.options = options or OptimizerOptions()
        self._delta_counter = itertools.count(1)

    # ------------------------------------------------------------------

    def build_maintenance_batch(
        self, table_name: str, delta_table: str
    ) -> Tuple[BoundBatch, List[MaterializedView]]:
        """The batch of delta queries for all views referencing the table."""
        affected = self.views.affected_by(table_name)
        if not affected:
            raise CatalogError(
                f"no materialized view references {table_name!r}"
            )
        queries: List[BoundQuery] = []
        instance_counter = itertools.count(10_000_000)
        for view in affected:
            fresh = self._fresh_copy(view.query, instance_counter)

            def delta_ref_factory(old: TableRef) -> TableRef:
                return TableRef(
                    table=old.table,
                    instance=next(instance_counter),
                    alias=f"delta_{old.display_name}",
                    is_delta=True,
                    storage_name=delta_table,
                )

            block = rewrite_block_with_delta(
                fresh.block, table_name, delta_ref_factory
            )
            queries.append(
                BoundQuery(
                    name=f"maint_{view.name}",
                    block=block,
                    subqueries={},
                    order_by=(),
                )
            )
        return BoundBatch(queries=queries), affected

    @staticmethod
    def _fresh_copy(query: BoundQuery, counter) -> BoundQuery:
        """Re-instance a bound query so maintenance batches never share
        table instances with each other or with the original views."""
        if query.subqueries:
            raise UnsupportedFeatureError(
                "maintenance of views with subqueries"
            )
        block = query.block
        mapping = {
            t: TableRef(
                table=t.table,
                instance=next(counter),
                alias=t.alias,
                is_delta=t.is_delta,
                storage_name=t.storage_name,
            )
            for t in block.tables
        }

        def rewrite(expr: Expr) -> Expr:
            for old, new in mapping.items():
                expr = _replace_table(expr, old, new)
            return expr

        new_block = QueryBlock(
            name=f"{block.name}__maint",
            tables=tuple(mapping[t] for t in block.tables),
            conjuncts=tuple(rewrite(c) for c in block.conjuncts),
            output=tuple(
                OutputColumn(o.name, rewrite(o.expr)) for o in block.output
            ),
            group_keys=tuple(rewrite(k) for k in block.group_keys),  # type: ignore[misc]
            aggregates=tuple(rewrite(a) for a in block.aggregates),  # type: ignore[misc]
            having=tuple(rewrite(h) for h in block.having),
        )
        return BoundQuery(name=block.name, block=new_block)

    # ------------------------------------------------------------------

    def apply_insert(
        self, table_name: str, rows: Sequence[Sequence[Any]]
    ) -> MaintenanceOutcome:
        """Insert ``rows`` into ``table_name`` and maintain every affected
        view, exploiting shared subexpressions across maintenance queries."""
        return self._apply_change(table_name, rows, sign=+1)

    def apply_delete(
        self, table_name: str, rows: Sequence[Sequence[Any]]
    ) -> MaintenanceOutcome:
        """Delete ``rows`` (full tuples) from ``table_name`` and maintain
        every affected view by *subtracting* the delta.

        SUM/COUNT aggregates and SPJ views are self-maintainable under
        deletes; views with MIN/MAX raise
        :class:`~repro.errors.UnsupportedFeatureError` (their maintenance
        would require recomputation, which callers do via ``refresh``).
        """
        affected = self.views.affected_by(table_name)
        for view in affected:
            for agg in view.query.block.aggregates:
                if agg.func in (AggFunc.MIN, AggFunc.MAX):
                    raise UnsupportedFeatureError(
                        f"view {view.name!r}: MIN/MAX cannot be maintained "
                        "incrementally under deletes; refresh() it instead"
                    )
        return self._apply_change(table_name, rows, sign=-1)

    def _apply_change(
        self, table_name: str, rows: Sequence[Sequence[Any]], sign: int
    ) -> MaintenanceOutcome:
        schema = self.database.catalog.table(table_name)
        delta_name = f"__delta_{schema.name}_{next(self._delta_counter)}"
        delta_schema = TableSchema(
            name=delta_name,
            columns=[
                ColumnSchema(c.name, c.data_type, c.ndv_hint)
                for c in schema.columns
            ],
        )
        self.database.create_table(delta_schema)
        self.database.insert(delta_name, rows)
        self.database.analyze(delta_name)

        try:
            batch, affected = self.build_maintenance_batch(
                schema.name, delta_name
            )
            optimizer = Optimizer(self.database, self.options)
            optimization = optimizer.optimize(batch)
            execution = Executor(self.database).execute(optimization.bundle)
            applied: Dict[str, int] = {}
            for view in affected:
                delta_rows = execution.query(f"maint_{view.name}").rows
                applied[view.name] = len(delta_rows)
                _apply_delta(view, delta_rows, sign)
            # Finally, the base table itself changes.
            if sign > 0:
                self.database.insert(schema.name, rows)
            else:
                self._delete_base_rows(schema.name, rows)
        finally:
            self.database.drop_table(delta_name)

        return MaintenanceOutcome(
            table=schema.name,
            delta_rows=len(rows),
            affected_views=[v.name for v in affected],
            optimization=optimization,
            execution=execution,
            applied_rows=applied,
        )

    def _delete_base_rows(
        self, table_name: str, rows: Sequence[Sequence[Any]]
    ) -> None:
        table = self.database.table(table_name)
        doomed = {tuple(row) for row in rows}
        keep = [row for row in table.rows() if tuple(row) not in doomed]
        names = table.schema.column_names
        columns = {
            name: [row[i] for row in keep] for i, name in enumerate(names)
        }
        self.database.load(table_name, columns)
        self.database.analyze(table_name)


def _apply_delta(
    view: MaterializedView, delta_rows: List[Tuple], sign: int = +1
) -> None:
    """Merge delta rows into a view's stored contents.

    Grouped views merge on the grouping keys (SUM/COUNT add or subtract,
    MIN/MAX take the extremum on inserts); SPJ views append on insert,
    remove matching tuples on delete. On delete, a group whose COUNT(*)
    output reaches zero disappears.
    """
    if view.contents is None:
        raise CatalogError(
            f"view {view.name!r} must be refreshed before maintenance"
        )
    block = view.query.block
    table = view.contents
    if not block.has_groupby:
        _apply_spj_delta(table, delta_rows, sign)
        return

    key_positions = [
        i for i, out in enumerate(block.output)
        if not out.expr.contains_aggregate()
    ]
    count_positions = [
        i for i, out in enumerate(block.output)
        if isinstance(out.expr, AggExpr) and out.expr.func is AggFunc.COUNT
    ]
    existing: Dict[tuple, List[Any]] = {}
    rows = list(zip(*[table.column(n).tolist() for n in table.column_names]))
    for row in rows:
        existing[tuple(row[i] for i in key_positions)] = list(row)
    for row in delta_rows:
        key = tuple(row[i] for i in key_positions)
        current = existing.get(key)
        if current is None:
            if sign < 0:
                raise CatalogError(
                    f"view {view.name!r}: delete delta for unknown group {key}"
                )
            existing[key] = list(row)
            continue
        for i, out in enumerate(block.output):
            current[i] = _merge_output(out.expr, current[i], row[i], sign)
        if sign < 0 and count_positions and all(
            current[i] <= 0 for i in count_positions
        ):
            del existing[key]
    merged_rows = sorted(existing.values(), key=repr)
    columns = {}
    for index, name in enumerate(table.column_names):
        columns[name] = np.array(
            [row[index] for row in merged_rows],
            dtype=table.column_types[index].numpy_dtype,
        )
    table.load(columns)


def _apply_spj_delta(table, delta_rows: List[Tuple], sign: int) -> None:
    if not delta_rows:
        return
    if sign > 0:
        columns = table.columns()
        merged: Dict[str, np.ndarray] = {}
        for index, name in enumerate(table.column_names):
            extra = np.array(
                [row[index] for row in delta_rows],
                dtype=table.column_types[index].numpy_dtype,
            )
            merged[name] = np.concatenate([columns[name], extra])
        table.load(merged)
        return
    # Delete: bag semantics — remove one stored copy per delta occurrence.
    from collections import Counter

    doomed = Counter(tuple(row) for row in delta_rows)
    kept: List[Tuple] = []
    stored = list(zip(*[table.column(n).tolist() for n in table.column_names]))
    for row in stored:
        key = tuple(row)
        if doomed.get(key, 0) > 0:
            doomed[key] -= 1
            continue
        kept.append(row)
    columns = {
        name: np.array(
            [row[index] for row in kept],
            dtype=table.column_types[index].numpy_dtype,
        )
        for index, name in enumerate(table.column_names)
    }
    table.load(columns)


def _merge_output(expr: Expr, old: Any, new: Any, sign: int = +1) -> Any:
    if isinstance(expr, AggExpr):
        if expr.func in (AggFunc.SUM, AggFunc.COUNT):
            return old + sign * new
        if expr.func is AggFunc.MIN and sign > 0:
            return min(old, new)
        if expr.func is AggFunc.MAX and sign > 0:
            return max(old, new)
        raise UnsupportedFeatureError(
            f"incremental maintenance of {expr.func.value} under this change"
        )
    if not expr.contains_aggregate():
        return old  # a grouping column: unchanged
    raise UnsupportedFeatureError(
        f"incremental maintenance of computed aggregate output {expr!r}"
    )
