"""Materialized views and their joint maintenance (paper §6.4)."""

from .materialized import MaterializedView, ViewManager
from .maintenance import MaintenancePlanner, MaintenanceOutcome

__all__ = [
    "MaterializedView",
    "ViewManager",
    "MaintenancePlanner",
    "MaintenanceOutcome",
]
