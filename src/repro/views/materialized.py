"""Materialized view definitions and storage.

A materialized view is an SPJG query whose result is stored. The
:class:`ViewManager` keeps definitions, materializes their contents (through
the regular optimizer/executor pipeline) and exposes which views are affected
by an update to a base table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import CatalogError
from ..executor.executor import Executor
from ..logical.blocks import BoundBatch, BoundQuery
from ..optimizer.engine import Optimizer
from ..optimizer.options import OptimizerOptions
from ..sql.binder import Binder
from ..sql.parser import parse_batch
from ..storage.database import Database
from ..storage.worktable import WorkTable
from ..types import DataType


@dataclass
class MaterializedView:
    """A named, stored SPJG view."""

    name: str
    sql: str
    query: BoundQuery
    #: stored rows, column name -> array (None until first refresh)
    contents: Optional[WorkTable] = None

    @property
    def base_tables(self) -> List[str]:
        """Names of the base tables the view reads."""
        return sorted({t.table for t in self.query.block.tables})

    @property
    def column_names(self) -> List[str]:
        """Output column names, in order."""
        return [o.name for o in self.query.block.output]

    def references(self, table_name: str) -> bool:
        """Whether the view reads ``table_name``."""
        return table_name.lower() in (t.lower() for t in self.base_tables)


class ViewManager:
    """Creates, refreshes, and enumerates materialized views."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._views: Dict[str, MaterializedView] = {}

    def create_view(self, name: str, sql: str) -> MaterializedView:
        """Define (but do not yet materialize) a view from SQL."""
        key = name.lower()
        if key in self._views:
            raise CatalogError(f"materialized view {name!r} already exists")
        statements = parse_batch(sql)
        if len(statements) != 1:
            raise CatalogError("a view is defined by exactly one statement")
        query = Binder(self.database.catalog).bind_statement(statements[0], name)
        view = MaterializedView(name=name, sql=sql, query=query)
        self._views[key] = view
        return view

    def drop_view(self, name: str) -> None:
        """Remove a view definition and its contents."""
        key = name.lower()
        if key not in self._views:
            raise CatalogError(f"materialized view {name!r} does not exist")
        del self._views[key]

    def view(self, name: str) -> MaterializedView:
        """A view by name."""
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(
                f"materialized view {name!r} does not exist"
            ) from None

    def views(self) -> List[MaterializedView]:
        """All registered views."""
        return list(self._views.values())

    def affected_by(self, table_name: str) -> List[MaterializedView]:
        """Views whose definition references ``table_name``."""
        return [v for v in self._views.values() if v.references(table_name)]

    # ------------------------------------------------------------------

    def refresh(
        self, name: str, options: Optional[OptimizerOptions] = None
    ) -> MaterializedView:
        """(Re)compute one view's contents from scratch."""
        view = self.view(name)
        optimizer = Optimizer(self.database, options or OptimizerOptions())
        result = optimizer.optimize(BoundBatch(queries=[view.query]))
        execution = Executor(self.database).execute(result.bundle)
        rows = execution.query(view.name).rows
        view.contents = _rows_to_worktable(view, rows)
        return view

    def refresh_all(self, options: Optional[OptimizerOptions] = None) -> None:
        """Recompute every view's contents."""
        for view in self._views.values():
            self.refresh(view.name, options)


def _rows_to_worktable(
    view: MaterializedView, rows: List[Tuple]
) -> WorkTable:
    names = view.column_names
    types: List[DataType] = [o.expr.data_type for o in view.query.block.output]
    columns: Dict[str, np.ndarray] = {}
    for index, col_name in enumerate(names):
        values = [row[index] for row in rows]
        columns[col_name] = np.array(
            values, dtype=types[index].numpy_dtype
        )
    table = WorkTable(view.name, names, types)
    table.load(columns)
    return table
