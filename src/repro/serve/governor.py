"""Resource governance: budgets, cooperative cancellation, admission.

The paper's pipeline makes shared-subexpression exploitation *strictly
optional*: the no-sharing plan is always a valid plan, so any failure of
the sharing machinery can degrade gracefully instead of failing the batch
(Roy et al.; Kathuria & Sudarshan). This module supplies the mechanisms the
:class:`~repro.api.Session` uses to make that contract operational under
heavy traffic:

* :class:`QueryBudget` — declarative per-batch limits: a wall-clock
  deadline, an optimizer deadline, and row/spool-size budgets.
* :class:`CancellationToken` — the budget instantiated for one run. It is
  threaded through :class:`~repro.executor.runtime.ExecutionContext` and
  checked cooperatively inside the executor iterators (one flag test plus
  one clock read per operator), so a runaway spool materialization or a
  pathological plan stops at the next operator boundary rather than
  stalling a whole parallel batch. Tokens are shared across every task of
  a parallel execution: cancelling one cancels the DAG.
* :class:`ResourceGovernor` — admission control: at most ``max_concurrent``
  batches execute at once, at most ``max_queue`` wait (bounded, optionally
  with a wait timeout); everything beyond that is rejected with
  :class:`~repro.errors.AdmissionError` instead of piling onto the pool.

All governor activity is observable through the session's
:class:`~repro.obs.MetricsRegistry` (``governor.*`` counters, gauges, and
histograms — exported via the existing Prometheus path) and, for
fallbacks, the :class:`~repro.obs.DecisionJournal`.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from time import monotonic
from typing import Deque, Iterator, Optional

from ..errors import (
    AdmissionError,
    BudgetExceededError,
    GovernorError,
    QueryCancelledError,
    QueryTimeoutError,
)
from ..obs import NULL_REGISTRY, MetricsRegistry


@dataclass(frozen=True)
class QueryBudget:
    """Declarative per-batch resource limits (all optional).

    ``deadline_ms`` bounds the whole optimize+execute wall time;
    ``optimizer_deadline_ms`` additionally bounds just the optimizer (on
    expiry the batch is re-optimized without CSEs rather than failed).
    ``max_spool_rows`` / ``max_spool_bytes`` cap the total rows/bytes
    materialized into shared spools; ``max_rows`` caps the total rows
    flowing out of operators. With ``allow_fallback`` (the default), an
    optimizer failure or a spool-budget bust degrades to the paper's
    no-sharing baseline plan; deadline expiry always raises
    :class:`~repro.errors.QueryTimeoutError`."""

    deadline_ms: Optional[float] = None
    optimizer_deadline_ms: Optional[float] = None
    max_spool_rows: Optional[int] = None
    max_spool_bytes: Optional[float] = None
    max_rows: Optional[int] = None
    allow_fallback: bool = True

    def __post_init__(self) -> None:
        for name in ("deadline_ms", "optimizer_deadline_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise GovernorError(f"{name} must be positive, got {value}")
        for name in ("max_spool_rows", "max_spool_bytes", "max_rows"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise GovernorError(
                    f"{name} must be non-negative, got {value}"
                )

    def start(self) -> "CancellationToken":
        """A fresh token for one run, with the deadline armed from now."""
        deadline = (
            monotonic() + self.deadline_ms / 1000.0
            if self.deadline_ms is not None
            else None
        )
        return CancellationToken(deadline=deadline, budget=self)

    def optimizer_deadline(self, token: Optional["CancellationToken"]) -> Optional[float]:
        """The absolute optimizer deadline: the earlier of the optimizer's
        own allowance and the run's overall deadline."""
        candidates = []
        if self.optimizer_deadline_ms is not None:
            candidates.append(monotonic() + self.optimizer_deadline_ms / 1000.0)
        if token is not None and token.deadline is not None:
            candidates.append(token.deadline)
        return min(candidates) if candidates else None


class CancellationToken:
    """Shared cancellation/budget state for one batch execution.

    Thread-safe: one token is shared by every task of a parallel
    execution. :meth:`check` is the cooperative checkpoint — one cancelled
    flag test plus (when a deadline is set) one monotonic clock read — so
    calling it per operator invocation keeps overhead in the noise.
    Budget charges (:meth:`charge_rows`, :meth:`charge_spool`) cancel the
    token on exhaustion so sibling tasks abort at their next checkpoint.
    """

    __slots__ = (
        "deadline",
        "budget",
        "charges_rows",
        "_lock",
        "_cancelled",
        "_reason",
        "_error_type",
        "_rows",
        "_spool_rows",
        "_spool_bytes",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        budget: Optional[QueryBudget] = None,
    ) -> None:
        #: absolute :func:`time.monotonic` deadline, or None.
        self.deadline = deadline
        self.budget = budget
        #: precomputed so the executor skips row counting entirely when no
        #: row budget is set.
        self.charges_rows = budget is not None and budget.max_rows is not None
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason = ""
        self._error_type = QueryCancelledError
        self._rows = 0
        self._spool_rows = 0
        self._spool_bytes = 0.0

    # -- cancellation ------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        """True once the token was cancelled (any reason)."""
        return self._cancelled

    @property
    def reason(self) -> str:
        """The first cancellation reason, or '' while live."""
        return self._reason

    def cancel(
        self,
        reason: str = "cancelled",
        error_type: type = QueryCancelledError,
    ) -> None:
        """Cancel cooperatively: every subsequent :meth:`check` raises
        ``error_type(reason)``. The first cancellation wins."""
        with self._lock:
            if self._cancelled:
                return
            self._cancelled = True
            self._reason = reason
            self._error_type = error_type

    def check(self) -> None:
        """Raise if cancelled or past the deadline (the cooperative
        checkpoint called from the executor's operator loop)."""
        if self._cancelled:
            raise self._error_type(self._reason)
        deadline = self.deadline
        if deadline is not None and monotonic() >= deadline:
            self.cancel(
                "query deadline exceeded", error_type=QueryTimeoutError
            )
            raise QueryTimeoutError("query deadline exceeded")

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline (None when unbounded)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - monotonic())

    def for_retry(self) -> "CancellationToken":
        """A fresh token for a fallback re-execution: keeps the original
        absolute deadline (the whole call stays bounded) but drops the
        budget limits — the no-sharing plan materializes no spools."""
        return CancellationToken(deadline=self.deadline)

    # -- budget charges ----------------------------------------------------

    @property
    def rows_charged(self) -> int:
        """Total operator-output rows charged so far (0 without a row
        budget) — the evidence the charge-exactly-once tests audit."""
        return self._rows

    def charge_rows(self, rows: int) -> None:
        """Charge ``rows`` operator-output rows against ``max_rows``."""
        budget = self.budget
        if budget is None or budget.max_rows is None:
            return
        with self._lock:
            self._rows += rows
            total = self._rows
        if total > budget.max_rows:
            message = (
                f"row budget exceeded: {total} rows > "
                f"max_rows={budget.max_rows}"
            )
            self.cancel(message, error_type=BudgetExceededError)
            raise BudgetExceededError(message)

    def charge_spool(self, rows: int, size_bytes: float) -> None:
        """Charge one spool materialization against the spool budgets."""
        budget = self.budget
        if budget is None or (
            budget.max_spool_rows is None and budget.max_spool_bytes is None
        ):
            return
        with self._lock:
            self._spool_rows += rows
            self._spool_bytes += size_bytes
            message = None
            # A zero row budget forbids materialization outright — even an
            # empty spool (a consumer whose predicate selects no rows) must
            # degrade to the no-sharing baseline, or the `> 0` comparison
            # below would admit it.
            if budget.max_spool_rows == 0:
                message = (
                    "spool budget exceeded: spool materialized with "
                    "max_spool_rows=0"
                )
            elif (
                budget.max_spool_rows is not None
                and self._spool_rows > budget.max_spool_rows
            ):
                message = (
                    f"spool budget exceeded: {self._spool_rows} rows > "
                    f"max_spool_rows={budget.max_spool_rows}"
                )
            elif (
                budget.max_spool_bytes is not None
                and self._spool_bytes > budget.max_spool_bytes
            ):
                message = (
                    f"spool budget exceeded: {self._spool_bytes:.0f} bytes > "
                    f"max_spool_bytes={budget.max_spool_bytes}"
                )
        if message is not None:
            self.cancel(message, error_type=BudgetExceededError)
            raise BudgetExceededError(message)


class ResourceGovernor:
    """Admission control: bounded concurrency with a bounded FIFO queue.

    At most ``max_concurrent`` batches run at once. Up to ``max_queue``
    further batches wait, each for at most ``queue_timeout_ms`` (None =
    indefinitely); anything beyond either bound is rejected with
    :class:`~repro.errors.AdmissionError`.

    Queue order is *deterministic FIFO*: each waiter takes a ticket on
    arrival and a released slot always goes to the oldest waiting ticket.
    (A bare ``Semaphore`` makes no wake-up ordering promise — under
    contention waiters raced and admission order was whatever the OS
    scheduler picked; the micro-batching coordinator sits behind this
    queue, so arrival order must survive admission for its windows to be
    reproducible.) A new arrival never barges past existing waiters even
    when a slot is momentarily free.

    Metrics (``governor.*``): ``admitted`` / ``rejected`` counters, an
    ``active`` gauge, and a ``queue_wait_seconds`` histogram.
    """

    def __init__(
        self,
        max_concurrent: int = 4,
        max_queue: int = 16,
        queue_timeout_ms: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_concurrent < 1:
            raise GovernorError("max_concurrent must be positive")
        if max_queue < 0:
            raise GovernorError("max_queue must be non-negative")
        if queue_timeout_ms is not None and queue_timeout_ms <= 0:
            raise GovernorError("queue_timeout_ms must be positive")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout_ms = queue_timeout_ms
        self.registry = registry or NULL_REGISTRY
        self._cond = threading.Condition(threading.Lock())
        #: waiting tickets in arrival order; the head is next to admit.
        self._queue: Deque[int] = deque()
        self._next_ticket = 0
        self._active = 0

    @property
    def active(self) -> int:
        """Batches currently admitted (executing)."""
        with self._cond:
            return self._active

    @property
    def waiting(self) -> int:
        """Batches currently queued for admission."""
        with self._cond:
            return len(self._queue)

    def _admit_or_enqueue(self) -> Optional[int]:
        """Fast path under the lock: admit now (None) or return a ticket.

        Raises :class:`AdmissionError` when the queue is full."""
        with self._cond:
            # Admit immediately only when no one is already waiting — a
            # free slot must go to the queue head, not a new arrival.
            if self._active < self.max_concurrent and not self._queue:
                self._active += 1
                return None
            if len(self._queue) >= self.max_queue:
                self.registry.counter("governor.rejected")
                raise AdmissionError(
                    f"admission queue full ({len(self._queue)} waiting, "
                    f"max_queue={self.max_queue})"
                )
            ticket = self._next_ticket
            self._next_ticket += 1
            self._queue.append(ticket)
            return ticket

    def _wait_for_turn(self, ticket: int) -> None:
        """Block until ``ticket`` reaches the head with a free slot."""
        deadline = (
            monotonic() + self.queue_timeout_ms / 1000.0
            if self.queue_timeout_ms is not None
            else None
        )
        with self._cond:
            while not (
                self._queue[0] == ticket
                and self._active < self.max_concurrent
            ):
                remaining = (
                    None if deadline is None else deadline - monotonic()
                )
                if remaining is not None and remaining <= 0:
                    self._queue.remove(ticket)
                    # Our departure may unblock the new head.
                    self._cond.notify_all()
                    self.registry.counter("governor.rejected")
                    raise AdmissionError(
                        f"admission wait exceeded {self.queue_timeout_ms}ms "
                        f"({self.max_concurrent} batches active)"
                    )
                self._cond.wait(timeout=remaining)
            self._queue.popleft()
            self._active += 1
            # Further slots may be free (several releases can land before
            # the head wakes); let the next ticket re-check.
            self._cond.notify_all()

    @contextmanager
    def admit(self) -> Iterator["ResourceGovernor"]:
        """Acquire an execution slot for one batch (context manager)."""
        ticket = self._admit_or_enqueue()
        start = monotonic()
        if ticket is not None:
            self._wait_for_turn(ticket)
        self.registry.counter("governor.admitted")
        self.registry.observe(
            "governor.queue_wait_seconds", monotonic() - start
        )
        with self._cond:
            self.registry.gauge("governor.active", self._active)
        try:
            yield self
        finally:
            with self._cond:
                self._active -= 1
                self.registry.gauge("governor.active", self._active)
                self._cond.notify_all()
