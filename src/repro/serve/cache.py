"""A thread-safe, bounded LRU cache of optimization results.

A warm :meth:`repro.api.Session.execute` skips the optimizer entirely: the
chosen :class:`~repro.optimizer.engine.OptimizationResult` is returned from
here and re-executed. Entries are keyed by
(batch fingerprint, catalog version, config key) — see
:mod:`repro.serve.fingerprint` — and remember which physical tables their
batch reads so a mutation of one table only invalidates the plans that
could observe it.

Every lookup increments exactly one of ``plan_cache.hit`` /
``plan_cache.miss`` in the session's :class:`MetricsRegistry`; evictions
and invalidations are counted as ``plan_cache.eviction`` /
``plan_cache.invalidation``. The same totals are kept locally (``hits``,
``misses``, …) so the cache is observable even with the null registry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import FrozenSet, Optional

from ..obs import NULL_REGISTRY, MetricsRegistry
from ..optimizer.engine import OptimizationResult
from .fingerprint import CacheKey


@dataclass
class CacheEntry:
    """One cached optimization result plus its invalidation scope."""

    result: OptimizationResult
    tables: FrozenSet[str]


class PlanCache:
    """Bounded LRU mapping cache keys to optimization results."""

    def __init__(
        self,
        capacity: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self.registry = registry or NULL_REGISTRY
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- lookups -----------------------------------------------------------

    def get(self, key: CacheKey) -> Optional[OptimizationResult]:
        """The cached result for ``key``, or None; counts hit or miss."""
        start = perf_counter()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                hit = False
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                hit = True
        # Registry has its own lock; never call it while holding ours.
        self.registry.counter("plan_cache.hit" if hit else "plan_cache.miss")
        if hit:
            self.registry.observe(
                "plan_cache.hit_seconds", perf_counter() - start
            )
        return entry.result if entry is not None else None

    def put(
        self,
        key: CacheKey,
        result: OptimizationResult,
        tables: FrozenSet[str],
    ) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        evicted = 0
        # Invalidation matches on lowercased table names; normalize here so
        # a batch bound against mixed-case DDL still invalidates.
        tables = frozenset(t.lower() for t in tables)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = CacheEntry(result=result, tables=tables)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted:
            self.registry.counter("plan_cache.eviction", evicted)

    # -- invalidation ------------------------------------------------------

    def invalidate(self, table: Optional[str] = None) -> int:
        """Drop entries reading ``table`` (all entries when None).

        This is the :class:`~repro.storage.database.Database` mutation hook:
        sessions register ``cache.invalidate`` as a mutation listener, so an
        ``insert``/``load``/DDL on one table removes exactly the plans whose
        batches touch it. Returns the number of entries dropped."""
        with self._lock:
            if table is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                key_name = table.lower()
                stale = [
                    key
                    for key, entry in self._entries.items()
                    if key_name in entry.tables
                ]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            self.invalidations += dropped
        if dropped:
            self.registry.counter("plan_cache.invalidation", dropped)
        return dropped

    def clear(self) -> None:
        """Drop everything without counting invalidations."""
        with self._lock:
            self._entries.clear()
