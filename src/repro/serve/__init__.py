"""The serving layer: plan caching, parallel execution, and governance.

Built for the warm path: a session serving the same (or similar) batches
repeatedly should pay optimization once (:class:`PlanCache`), execute each
bundle's spool DAG concurrently (:class:`ParallelExecutor`), and stay
responsive under load (:class:`ResourceGovernor` admission control plus
per-batch :class:`QueryBudget` deadlines and spool budgets, with graceful
degradation to the paper's no-sharing baseline). See README.md § Serving
and § Resource governance for semantics and DESIGN.md for the mapping back
to the paper's §5.4/§5.5.
"""

from .cache import CacheEntry, PlanCache
from .coordinator import SharedBatchCoordinator, SharedOutcome
from .fingerprint import (
    CacheKey,
    batch_fingerprint,
    batch_signatures,
    batch_tables,
    cache_key,
    config_key,
    query_fingerprint,
    query_table_signature,
)
from .governor import CancellationToken, QueryBudget, ResourceGovernor
from .parallel import ParallelExecutor
from .schedule import Schedule, TaskSpec, build_schedule

__all__ = [
    "CacheEntry",
    "CacheKey",
    "CancellationToken",
    "ParallelExecutor",
    "PlanCache",
    "QueryBudget",
    "ResourceGovernor",
    "Schedule",
    "SharedBatchCoordinator",
    "SharedOutcome",
    "TaskSpec",
    "batch_fingerprint",
    "batch_signatures",
    "batch_tables",
    "build_schedule",
    "cache_key",
    "config_key",
    "query_fingerprint",
    "query_table_signature",
]
