"""The serving layer: plan caching and parallel batch execution.

Built for the warm path: a session serving the same (or similar) batches
repeatedly should pay optimization once (:class:`PlanCache`) and execute
each bundle's spool DAG concurrently (:class:`ParallelExecutor`). See
README.md § Serving for semantics and DESIGN.md for the mapping back to
the paper's §5.4/§5.5.
"""

from .cache import CacheEntry, PlanCache
from .fingerprint import (
    CacheKey,
    batch_fingerprint,
    batch_tables,
    cache_key,
    config_key,
)
from .parallel import ParallelExecutor
from .schedule import Schedule, TaskSpec, build_schedule

__all__ = [
    "CacheEntry",
    "CacheKey",
    "ParallelExecutor",
    "PlanCache",
    "Schedule",
    "TaskSpec",
    "batch_fingerprint",
    "batch_tables",
    "build_schedule",
    "cache_key",
    "config_key",
]
