"""Dependency schedules over a plan bundle's spool producer/consumer DAG.

A :class:`PlanBundle` is embarrassingly parallel between spool barriers:
each root spool must materialize before any of its consumers run, stacked
spools (§5.5) must materialize before the spools that read them, and
everything else is independent. :func:`build_schedule` extracts that DAG as
a list of :class:`TaskSpec` — one per root spool and one per query — with
dependency edges expressed as task indices, ready to hand to the parallel
executor (or to anything else that wants the topology, e.g. EXPLAIN
tooling or tests).

Spools defined *inside* a query plan (single-query LCA placements, rendered
as ``PhysSpoolDef`` nodes) are private to that query's task: the optimizer
settles a candidate at a group dominating all its consumers, so a spool
whose consumers span queries is always lifted to the bundle root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..executor.scans import RawKey, scan_group_key, stats_key_for
from ..obs import SpanContext
from ..optimizer.engine import PlanBundle, QueryPlan
from ..optimizer.physical import PhysScan, PhysicalPlan, PhysSpoolRead


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit: prewarm a shared scan, materialize a spool,
    or run a query."""

    index: int
    kind: str  # "scan" | "spool" | "query"
    label: str  # scan group key, cse id, or query name
    #: indices of tasks that must complete before this one starts.
    deps: Tuple[int, ...] = ()
    #: the trace context the task should run under — the scheduling
    #: thread's batch span, stamped at submit time so worker-thread spans
    #: parent under the batch root instead of being orphaned (the
    #: cross-thread half lives in :meth:`repro.obs.Tracer.attach`).
    span_context: Optional[SpanContext] = None
    #: for kind == "scan": the (physical table, sorted column names)
    #: group this task prewarms in the batch's shared ScanManager.
    scan: Optional[Tuple[str, Tuple[str, ...]]] = None


@dataclass
class Schedule:
    """The bundle's task DAG in a topologically valid order."""

    tasks: List[TaskSpec] = field(default_factory=list)

    @property
    def width(self) -> int:
        """The maximum number of tasks runnable concurrently (antichain
        bound computed level-by-level: tasks whose dependencies all sit in
        earlier levels share a level)."""
        level: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for task in self.tasks:
            task_level = (
                max((level[d] for d in task.deps), default=-1) + 1
            )
            level[task.index] = task_level
            counts[task_level] = counts.get(task_level, 0) + 1
        return max(counts.values(), default=0)

    def describe(self) -> str:
        """One line per task: kind, label, and dependency labels."""
        by_index = {t.index: t for t in self.tasks}
        lines = []
        for task in self.tasks:
            deps = ", ".join(by_index[d].label for d in task.deps)
            suffix = f" <- [{deps}]" if deps else ""
            lines.append(f"{task.kind} {task.label}{suffix}")
        return "\n".join(lines)


def _spool_reads(plan: PhysicalPlan) -> Set[str]:
    return {
        node.cse_id
        for node in plan.walk()
        if isinstance(node, PhysSpoolRead)
    }


def _query_reads(query: QueryPlan) -> Set[str]:
    reads: Set[str] = _spool_reads(query.plan)
    for sub_plan in query.subquery_plans.values():
        reads |= _spool_reads(sub_plan)
    return reads


def query_spool_read_counts(
    bundle: PlanBundle,
) -> Dict[str, Dict[str, int]]:
    """Per-query spool read counts: ``query name -> cse id -> reads``.

    Counts every :class:`PhysSpoolRead` in each query's plan and scalar
    subplans (root spools and inline definitions alike) — the planned
    consumer structure the sharing ledger attributes savings over."""
    counts: Dict[str, Dict[str, int]] = {}
    for query in bundle.queries:
        reads: Dict[str, int] = {}
        plans = [query.plan, *query.subquery_plans.values()]
        for plan in plans:
            for node in plan.walk():
                if isinstance(node, PhysSpoolRead):
                    reads[node.cse_id] = reads.get(node.cse_id, 0) + 1
        counts[query.name] = reads
    return counts


def _scan_groups(plan: PhysicalPlan) -> List[RawKey]:
    """Every scan's (table, needed-columns) group, with multiplicity."""
    return [
        key
        for node in plan.walk()
        if isinstance(node, PhysScan)
        for key in [scan_group_key(node)]
        if key is not None
    ]


def build_schedule(bundle: PlanBundle, include_scans: bool = False) -> Schedule:
    """The producer→consumer task DAG for one bundle.

    Tasks are emitted spools-first in the bundle's (already topological)
    spool order, then queries in batch order, so executing the schedule
    serially in task order is exactly the serial executor's order. With
    ``include_scans`` a prewarm task is emitted (first) for every shared
    (table, column-set) scan group — one with two or more consuming scan
    nodes — and every spool/query task touching the group depends on it,
    so the single physical fetch happens off the consumers' critical
    path."""
    tasks: List[TaskSpec] = []
    # The bundle's root_spools may only be iterated once per schedule
    # build (the hoisting regression test counts iterations).
    spool_items = list(bundle.root_spools)
    scan_index: Dict[RawKey, int] = {}
    spool_scan_groups: List[Set[RawKey]] = []
    query_scan_groups: List[Set[RawKey]] = []
    if include_scans:
        counts: Dict[RawKey, int] = {}
        ordered: List[RawKey] = []
        for _, body in spool_items:
            groups = _scan_groups(body)
            spool_scan_groups.append(set(groups))
            for key in groups:
                if key not in counts:
                    ordered.append(key)
                counts[key] = counts.get(key, 0) + 1
        for query in bundle.queries:
            groups: List[RawKey] = []
            for plan in [query.plan, *query.subquery_plans.values()]:
                groups.extend(_scan_groups(plan))
            query_scan_groups.append(set(groups))
            for key in groups:
                if key not in counts:
                    ordered.append(key)
                counts[key] = counts.get(key, 0) + 1
        for key in ordered:
            if counts[key] < 2:
                continue
            index = len(tasks)
            physical, names = key
            tasks.append(
                TaskSpec(
                    index=index,
                    kind="scan",
                    label=stats_key_for(key),
                    scan=(physical, tuple(sorted(names))),
                )
            )
            scan_index[key] = index
    spool_index: Dict[str, int] = {}
    for position, (cse_id, body) in enumerate(spool_items):
        # Reads of ids outside spool_index are either inline PhysSpoolDef
        # definitions (private to this task) or planner bugs the executor's
        # "read before materialization" error will surface; the bundle's
        # spool order is already toposorted, so every root-spool dependency
        # is indexed by the time its reader is reached.
        deps = {
            spool_index[dep]
            for dep in _spool_reads(body)
            if dep in spool_index
        }
        if include_scans:
            deps.update(
                scan_index[key]
                for key in spool_scan_groups[position]
                if key in scan_index
            )
        index = len(tasks)
        tasks.append(
            TaskSpec(
                index=index,
                kind="spool",
                label=cse_id,
                deps=tuple(sorted(deps)),
            )
        )
        spool_index[cse_id] = index
    for position, query in enumerate(bundle.queries):
        deps = {
            spool_index[dep]
            for dep in _query_reads(query)
            if dep in spool_index
        }
        if include_scans:
            deps.update(
                scan_index[key]
                for key in query_scan_groups[position]
                if key in scan_index
            )
        tasks.append(
            TaskSpec(
                index=len(tasks),
                kind="query",
                label=query.name,
                deps=tuple(sorted(deps)),
            )
        )
    return Schedule(tasks=tasks)
