"""Cross-session work sharing: dynamic micro-batching of in-flight queries.

The paper's machinery shares subexpressions *within* one submitted batch.
This module widens the sharing boundary to *concurrent sessions*: queries
that arrive close together in time — from different connections — are held
for a short micro-batching window, merged into one logical batch, optimized
once (Steps 1–3 run over the union, so cross-session common subexpressions
are detected exactly like intra-batch ones), and executed with each shared
spool materialized once and served to every consumer.

Protocol (one :class:`_Group` per window):

1. An arriving query joins an open group when its base-table set
   intersects the group's — the coarse Step-1 filter: a common
   subexpression requires a common base table, so table-disjoint queries
   gain nothing from a merged optimization and would only pay its
   latency. The first arrival becomes the *leader* and owns the window
   timer; later arrivals are *followers*.
2. The leader waits ``window_ms`` (or until ``max_group`` consumers have
   joined), closes the group, binds the concatenated SQL under
   slot-prefixed query names, optimizes it once (through the
   coordinator's own plan cache, keyed *after* the window closes so a
   mid-window catalog mutation re-keys the merged plan), and materializes
   every root spool exactly once into a refcounted
   :class:`~repro.executor.runtime.SharedSpoolPool`.
3. Every consumer — leader included — then runs only *its own* query
   plans on its own thread, attaching the shared spools (aliasing, never
   copying) and charging its own :class:`~repro.serve.governor.QueryBudget`
   for each spool it reads, exactly once, with the same amounts an
   isolated materialization would have charged. The last detach frees the
   spool.

Failure is never worse than not sharing: any error in the shared phase, or
a consumer's own budget bust, makes that consumer fall back to its
session's ordinary governed path (``submit`` returns ``None``).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import ReproError
from ..executor.executor import BatchResult, Executor, QueryResult
from ..executor.runtime import (
    ExecutionContext,
    ExecutionMetrics,
    KeyFactorCache,
    SharedSpoolPool,
)
from ..executor.scans import ScanManager
from ..executor.iterators import materialize_spool
from ..obs import NULL_REGISTRY, MetricsRegistry, SharingLedger, build_ledger
from .cache import PlanCache
from .fingerprint import batch_fingerprint, batch_tables, cache_key, config_key
from .schedule import query_spool_read_counts

if TYPE_CHECKING:  # avoid the serve → api → serve import cycle
    from ..api import Session
    from ..logical.blocks import BoundBatch
    from ..optimizer.engine import OptimizationResult
    from .governor import QueryBudget


@dataclass
class SharedOutcome:
    """One consumer's share of a merged-batch execution."""

    #: the *merged* batch's optimization (plans for every consumer; this
    #: consumer's plans carry its ``s<slot>__`` name prefix).
    optimization: "OptimizationResult"
    #: this consumer's results, renamed back to its original query names.
    execution: BatchResult
    #: True when the merged plan came from the coordinator's plan cache.
    plan_cache_hit: bool
    #: how many consumers shared the window.
    group_size: int
    #: which Step-3 strategy optimized the merged batch.
    strategy: str
    #: this consumer's sharing ledger (its planned reads only; the
    #: leader's measured columns also carry the producer-phase costs).
    ledger: Optional[SharingLedger]


@dataclass
class _Consumer:
    """One session's pending query inside a group."""

    session: "Session"
    sql: str
    batch: "BoundBatch"
    budget: Optional["QueryBudget"]
    collect_op_stats: bool
    slot: int = 0


@dataclass
class _SharedRun:
    """Everything the consumers need after the leader's shared phase."""

    result: "OptimizationResult"
    cache_hit: bool
    pool: SharedSpoolPool
    #: root-level (cross-query) spool ids — the only ones served from the
    #: pool; spools nested inside one query's plan stay private to it.
    root_ids: FrozenSet[str]
    #: prefixed query name -> {cse_id: planned reads}.
    reads: Dict[str, Dict[str, int]]
    scans: Optional[ScanManager]
    factor_cache: KeyFactorCache
    spool_spans: Dict[str, int]
    #: producer-phase metrics (spool materializations, shared scans);
    #: merged into the leader consumer's result so batch totals match an
    #: isolated execution.
    producer_metrics: ExecutionMetrics
    strategy: str


class _Group:
    """An open micro-batching window: its consumers and lifecycle events."""

    def __init__(self, tables: Set[str]) -> None:
        self.consumers: List[_Consumer] = []
        #: union of the consumers' physical base tables (the merge filter).
        self.tables = tables
        self.closed = False
        #: set when max_group is reached — wakes the leader early.
        self.full = threading.Event()
        #: set (always, via the leader's finally) once the shared phase
        #: settled — successfully, solo, or with an error.
        self.ready = threading.Event()
        self.error: Optional[BaseException] = None
        self.shared: Optional[_SharedRun] = None


class SharedBatchCoordinator:
    """Merges concurrent sessions' queries into shared optimizations.

    Sits *behind* admission control: a session calls :meth:`submit` inside
    its governor's admit block, so the window never holds un-admitted
    work and governor concurrency limits still bound total in-flight
    queries. One coordinator may be shared by any number of sessions over
    the same database; buckets are keyed by (database identity, optimizer
    configuration) so only plan-compatible queries ever merge.

    ``window_ms`` is the micro-batching latency bound: the first arrival
    waits at most that long for sharing partners. ``0`` disables the
    coordinator entirely (every ``submit`` returns ``None``).
    """

    def __init__(
        self,
        window_ms: float = 5.0,
        max_group: int = 8,
        registry: Optional[MetricsRegistry] = None,
        plan_cache_size: int = 64,
    ) -> None:
        self.window_ms = float(window_ms)
        self.max_group = max(2, int(max_group))
        self.registry = registry or NULL_REGISTRY
        self.plan_cache_size = plan_cache_size
        self._lock = threading.Lock()
        #: (id(database), config key) -> open groups, newest last.
        self._open: Dict[Tuple[int, str], List[_Group]] = {}
        #: id(database) -> plan cache for merged batches over it.
        self._caches: Dict[int, PlanCache] = {}

    @property
    def enabled(self) -> bool:
        """False when the window is zero (micro-batching off)."""
        return self.window_ms > 0

    def note_bypass(self) -> None:
        """Record a query that was gated out of the shared path."""
        self.registry.counter("coordinator.bypass")

    # -- window protocol ---------------------------------------------------

    def submit(
        self,
        session: "Session",
        sql: str,
        batch: "BoundBatch",
        budget: Optional["QueryBudget"] = None,
        collect_op_stats: bool = False,
    ) -> Optional[SharedOutcome]:
        """Offer one query batch for cross-session sharing.

        Blocks for at most the micro-batching window (leader) or until the
        group's shared phase settles (follower). Returns this consumer's
        :class:`SharedOutcome`, or ``None`` when the query should run on
        the session's ordinary path instead (coordinator disabled, solo
        window, shared-phase error, or this consumer's own budget bust)."""
        if not self.enabled:
            return None
        tables = set(batch_tables(batch))
        bucket = (id(session.database), config_key(session.options, session.cost_model))
        consumer = _Consumer(session, sql, batch, budget, collect_op_stats)
        group, leader = self._enlist(bucket, consumer, tables)
        if not leader:
            group.ready.wait()
        else:
            try:
                self._run_window(bucket, group, consumer.session)
            finally:
                group.ready.set()
        if group.error is not None or group.shared is None:
            return None
        return self._consume(group, consumer)

    def _enlist(
        self,
        bucket: Tuple[int, str],
        consumer: _Consumer,
        tables: Set[str],
    ) -> Tuple[_Group, bool]:
        """Join a table-overlapping open group, or open one as leader."""
        with self._lock:
            groups = self._open.setdefault(bucket, [])
            for group in groups:
                if not group.closed and (group.tables & tables):
                    consumer.slot = len(group.consumers)
                    group.consumers.append(consumer)
                    group.tables |= tables
                    if len(group.consumers) >= self.max_group:
                        group.closed = True
                        groups.remove(group)
                        group.full.set()
                    return group, False
            group = _Group(tables)
            group.consumers.append(consumer)
            groups.append(group)
            return group, True

    def _run_window(
        self, bucket: Tuple[int, str], group: _Group, session: "Session"
    ) -> None:
        """Leader side: wait out the window, close, run the shared phase."""
        wait_start = perf_counter()
        group.full.wait(self.window_ms / 1000.0)
        with self._lock:
            group.closed = True
            groups = self._open.get(bucket)
            if groups and group in groups:
                groups.remove(group)
        self.registry.counter("coordinator.windows")
        self.registry.observe(
            "coordinator.window_wait_seconds", perf_counter() - wait_start
        )
        self.registry.observe(
            "coordinator.group_size", float(len(group.consumers))
        )
        if len(group.consumers) == 1:
            # Nobody showed up: run on the ordinary path — the shared
            # machinery would only add overhead to an unshared query.
            self.registry.counter("coordinator.solo_windows")
            return
        self.registry.counter("coordinator.merged_batches")
        self.registry.counter(
            "coordinator.merged_consumers", len(group.consumers)
        )
        try:
            group.shared = self._produce(group, session)
        except Exception as error:  # noqa: BLE001 — sharing must never
            # fail a query the ordinary path could have served: every
            # consumer falls back and re-runs unshared.
            group.error = error
            self.registry.counter("coordinator.fallbacks")
            self.registry.counter("coordinator.fallback.shared_phase")
            if session.journal.enabled:
                session.journal.event(
                    "shared_fallback", stage="shared_phase",
                    detail=str(error),
                )
            session.tracer.event(
                "shared_fallback", stage="shared_phase",
                consumers=len(group.consumers),
            )

    # -- shared phase (leader) ---------------------------------------------

    def _produce(self, group: _Group, session: "Session") -> _SharedRun:
        """Bind + optimize the merged batch; materialize spools once."""
        # Canonical slot order: sort consumers by their own batch
        # fingerprint so the merged batch's text — and therefore its
        # plan-cache key — depends only on *which* queries met in the
        # window, never on arrival order. Without this, every reshuffled
        # arrival of the same working set would be a cache miss.
        ordered = sorted(
            group.consumers, key=lambda c: batch_fingerprint(c.batch)
        )
        for slot, consumer in enumerate(ordered):
            consumer.slot = slot
        parts: List[str] = []
        names: List[str] = []
        for consumer in ordered:
            parts.append(consumer.sql.strip().rstrip(";").strip())
            names.extend(
                f"s{consumer.slot}__{q.name}" for q in consumer.batch.queries
            )
        with session.tracer.span(
            "share_window",
            consumers=len(group.consumers),
            queries=len(names),
        ):
            # One bind run over the concatenation gives the merged batch
            # consistent binder numbering; slot prefixes keep names unique
            # even when consumers submitted identical SQL.
            merged = session.bind(";\n".join(parts), names)
            result, cache_hit = self._cached_optimize(session, merged)
            reads = query_spool_read_counts(result.bundle)
            run = self._materialize(session, result, reads)
            run.cache_hit = cache_hit
            session.tracer.event(
                "shared_merge",
                consumers=len(group.consumers),
                spools=run.pool.published,
                cache_hit=cache_hit,
                strategy=run.strategy,
            )
            if session.journal.enabled:
                session.journal.event(
                    "shared_merge",
                    consumers=len(group.consumers),
                    queries=len(names),
                    spools=run.pool.published,
                    cache_hit=cache_hit,
                    strategy=run.strategy,
                )
            return run

    def _cached_optimize(
        self, session: "Session", merged: "BoundBatch"
    ) -> "Tuple[OptimizationResult, bool]":
        """Optimize the merged batch through the coordinator's plan cache.

        The key is computed *after* the window closed, so it snapshots the
        catalog version current at optimization time: a table mutation
        that lands mid-window bumps the version and re-keys (and the
        mutation listener has already evicted any stale merged entry)."""
        cache = self._plan_cache_for(session.database)
        if cache is None:
            return session.optimize(merged), False
        key = cache_key(
            merged, session.database, session.options, session.cost_model
        )
        cached = cache.get(key)
        if cached is not None:
            session.tracer.event(
                "shared_plan_cache_hit", fingerprint=key[0][:12]
            )
            return cached, True
        result = session.optimize(merged)
        cache.put(key, result, batch_tables(merged))
        return result, False

    def _plan_cache_for(self, database) -> Optional[PlanCache]:
        if self.plan_cache_size <= 0:
            return None
        with self._lock:
            cache = self._caches.get(id(database))
            if cache is None:
                cache = PlanCache(self.plan_cache_size, registry=self.registry)
                self._caches[id(database)] = cache
                _register_invalidation(database, cache)
            return cache

    def _materialize(
        self,
        session: "Session",
        result: "OptimizationResult",
        reads: Dict[str, Dict[str, int]],
    ) -> _SharedRun:
        """Producer phase: every root spool, exactly once, into the pool."""
        pool = SharedSpoolPool()
        scans = ScanManager() if session.shared_scans else None
        factor_cache = KeyFactorCache()
        spool_spans: Dict[str, int] = {}
        # Ungoverned on purpose: each *consumer* charges its own budget
        # for the spools it reads at attach time, exactly once — the
        # producer must not double-charge the leader.
        ctx = ExecutionContext(
            database=session.database,
            cost_model=session.cost_model,
            registry=session.registry,
            tracer=session.tracer,
            spool_spans=spool_spans,
            scans=scans,
            factor_cache=factor_cache,
            morsel_rows=session.morsel_rows,
        )
        for cse_id, body in result.bundle.root_spools:
            if cse_id not in ctx.spools:
                ctx.spools[cse_id] = materialize_spool(cse_id, body, ctx)
        # Refcount = number of distinct consumers whose plans read the
        # spool (a consumer attaches once however many reads it performs).
        consumers_of: Dict[str, Set[str]] = {}
        for qname, counts in reads.items():
            slot = qname.split("__", 1)[0]
            for cse_id in counts:
                consumers_of.setdefault(cse_id, set()).add(slot)
        for cse_id, table in ctx.spools.items():
            pool.publish(cse_id, table, len(consumers_of.get(cse_id, ())))
        self.registry.counter("coordinator.spools_published", pool.published)
        return _SharedRun(
            result=result,
            cache_hit=False,
            pool=pool,
            root_ids=frozenset(ctx.spools),
            reads=reads,
            scans=scans,
            factor_cache=factor_cache,
            spool_spans=spool_spans,
            producer_metrics=ctx.metrics,
            strategy=result.stats.strategy or "paper",
        )

    # -- consumer phase (every thread) -------------------------------------

    def _consume(
        self, group: _Group, consumer: _Consumer
    ) -> Optional[SharedOutcome]:
        """Run this consumer's plans against the shared spools."""
        shared = group.shared
        assert shared is not None
        session = consumer.session
        prefix = f"s{consumer.slot}__"
        my_plans = [
            qp for qp in shared.result.bundle.queries
            if qp.name.startswith(prefix)
        ]
        my_spools = sorted(
            {
                cse_id
                for qp in my_plans
                for cse_id in shared.reads.get(qp.name, ())
                if cse_id in shared.root_ids
            }
        )
        token = consumer.budget.start() if consumer.budget is not None else None
        attached: Dict[str, object] = {}
        start = perf_counter()
        try:
            with session.tracer.span(
                "shared_consume", slot=consumer.slot, queries=len(my_plans)
            ):
                for cse_id in my_spools:
                    table = shared.pool.attach(cse_id)
                    attached[cse_id] = table
                    if token is not None:
                        # Mirror the charge an isolated run pays at
                        # materialization, once per consumer per spool.
                        token.charge_spool(
                            table.row_count,
                            table.row_count * table.row_width(),
                        )
                ctx = ExecutionContext(
                    database=session.database,
                    cost_model=session.cost_model,
                    spools=dict(attached),
                    registry=session.registry,
                    op_stats={} if consumer.collect_op_stats else None,
                    token=token,
                    tracer=session.tracer,
                    spool_spans=shared.spool_spans,
                    scans=shared.scans,
                    factor_cache=shared.factor_cache,
                    morsel_rows=session.morsel_rows,
                )
                executor = Executor(
                    session.database,
                    session.cost_model,
                    registry=session.registry,
                    tracer=session.tracer,
                    shared_scans=session.shared_scans,
                    morsel_rows=session.morsel_rows,
                )
                results: List[QueryResult] = []
                executed_plans: Dict[str, object] = {}
                for query_plan in my_plans:
                    query_result, plan = executor._execute_query(
                        query_plan, ctx
                    )
                    original = query_result.name[len(prefix):]
                    results.append(
                        QueryResult(
                            name=original,
                            columns=query_result.columns,
                            rows=query_result.rows,
                        )
                    )
                    executed_plans[original] = plan
        except ReproError as error:
            # This consumer's own budget/limits tripped; its session
            # re-runs it unshared under a fresh token (the shared-attempt
            # charges are discarded with this token).
            self.registry.counter("coordinator.fallbacks")
            self.registry.counter("coordinator.fallback.consumer")
            if session.journal.enabled:
                session.journal.event(
                    "shared_fallback", stage="consumer",
                    slot=consumer.slot, detail=str(error),
                )
            session.tracer.event(
                "shared_fallback", stage="consumer", slot=consumer.slot
            )
            return None
        finally:
            for cse_id in attached:
                if shared.pool.detach(cse_id):
                    self.registry.counter("coordinator.spools_freed")
                    session.tracer.event("shared_spool_freed", spool=cse_id)
        wall = perf_counter() - start
        metrics = ctx.metrics
        if consumer.slot == 0:
            # The leader's result absorbs the producer phase so batch
            # totals (spool writes, shared scans, factorization counts)
            # appear exactly once across the group.
            shared.producer_metrics.merge(metrics)
            metrics = shared.producer_metrics
            metrics.key_factorizations = shared.factor_cache.factorizations
            metrics.key_factor_reuses = shared.factor_cache.reuses
        metrics.publish(session.registry)
        session.registry.timer_add("executor.wall", wall)
        my_reads = {
            qp.name[len(prefix):]: dict(shared.reads.get(qp.name, {}))
            for qp in my_plans
        }
        ledger = build_ledger(
            shared.result.candidates,
            metrics.spool_stats,
            my_reads,
            scan_stats=metrics.scan_stats,
        )
        execution = BatchResult(
            results=results,
            metrics=metrics,
            wall_time=wall,
            op_stats=ctx.op_stats,
            executed_plans=executed_plans,
        )
        return SharedOutcome(
            optimization=shared.result,
            execution=execution,
            plan_cache_hit=shared.cache_hit,
            group_size=len(group.consumers),
            strategy=shared.strategy,
            ledger=ledger,
        )


def _register_invalidation(database, cache: PlanCache) -> None:
    """Evict merged-plan entries when their tables mutate.

    Same weakref pattern as the session-level hook in :mod:`repro.api`
    (duplicated here to keep serve → api import-free): once the cache is
    collected, the first subsequent mutation unregisters the listener."""
    cache_ref = weakref.ref(cache)

    def _listener(table):
        target = cache_ref()
        if target is None:
            database.remove_mutation_listener(_listener)
        else:
            target.invalidate(table)

    database.add_mutation_listener(_listener)
