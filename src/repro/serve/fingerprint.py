"""Canonical fingerprints for bound batches (plan-cache keys).

A fingerprint is a SHA-256 digest of a *normalized* textual rendering of a
:class:`~repro.logical.blocks.BoundBatch`. Normalization keeps everything
that can change the chosen plan (tables, predicates, groupings, aggregates,
outputs, ORDER BY, subqueries) while erasing presentation noise that cannot:
conjunct order inside a WHERE clause and table order inside a block are
sorted, because conjunction and cross products commute.

The full cache key combines the batch fingerprint with the database's
catalog version (schema/statistics changes re-key everything) and the
repr of the optimizer options and cost model (both plain dataclasses, so
their reprs are stable value renderings). See :mod:`repro.serve.cache`.
"""

from __future__ import annotations

import hashlib
import re
from typing import Callable, Dict, List, Tuple

from ..logical.blocks import BoundBatch, BoundQuery, QueryBlock
from ..optimizer.cost import CostModel
from ..optimizer.options import OptimizerOptions
from ..storage.database import Database

#: A plan-cache key: (batch fingerprint, catalog version, config key).
CacheKey = Tuple[str, int, str]


#: a binder-assigned table reference like ``customer#3``.
_REF_TOKEN = re.compile(r"\b([A-Za-z_]\w*)#(\d+)\b")

#: canonicalizer type: rewrites one repr string.
_Canon = Callable[[str], str]

_IDENTITY: _Canon = lambda text: text  # noqa: E731


def _block_text(block: QueryBlock, canon: _Canon) -> str:
    parts: List[str] = [
        f"block {block.name}",
        "tables " + " ".join(sorted(canon(repr(t)) for t in block.tables)),
        "where " + " & ".join(sorted(canon(repr(c)) for c in block.conjuncts)),
        "group " + " ".join(canon(repr(k)) for k in block.group_keys),
        "aggs " + " ".join(sorted(canon(repr(a)) for a in block.aggregates)),
        "output " + " ".join(canon(repr(o)) for o in block.output),
        "having " + " & ".join(sorted(canon(repr(c)) for c in block.having)),
    ]
    return "\n".join(parts)


def _render_query(query: BoundQuery, canon: _Canon) -> str:
    parts = [f"query {query.name}", _block_text(query.block, canon)]
    for ext in query.extensions:
        keys = " ".join(
            f"{canon(repr(a))}={canon(repr(b))}" for a, b in ext.keys
        )
        parts.append(f"extension {ext.ext_id} {ext.kind} keys {keys}")
        parts.append(_block_text(ext.block, canon))
    if query.post is not None:
        post = query.post
        parts.append(
            "post"
            + "\nfilters " + " & ".join(sorted(canon(repr(c)) for c in post.filters))
            + "\ngroup " + " ".join(canon(repr(k)) for k in post.group_keys)
            + "\naggs " + " ".join(sorted(canon(repr(a)) for a in post.aggregates))
            + "\nhaving " + " & ".join(sorted(canon(repr(c)) for c in post.having))
            + "\noutput " + " ".join(canon(repr(o)) for o in post.output)
        )
    for sid in sorted(query.subqueries):
        parts.append(f"subquery {sid}")
        parts.append(_block_text(query.subqueries[sid], canon))
    parts.append(
        "order "
        + " ".join(
            f"{canon(repr(expr))}:{'desc' if descending else 'asc'}"
            for expr, descending in query.order_by
        )
    )
    return "\n".join(parts)


def _query_text(query: BoundQuery) -> str:
    """The query's normalized text, with canonical table-reference ids.

    The binder numbers table references in FROM-clause order, and those
    ordinals appear in every expression repr — so without renumbering,
    ``from nation, customer`` and ``from customer, nation`` would
    fingerprint differently even though cross products commute. A first
    raw rendering collects the referenced ordinals; each name's ordinals
    are then replaced by their 1-based rank. The remapping is a bijection
    (distinct references stay distinct, including self-joins), and it is
    applied to each repr *before* the conjunct/table sorts so the sorted
    order itself cannot depend on binder numbering."""
    raw = _render_query(query, _IDENTITY)
    ordinals: Dict[str, set] = {}
    for name, num in _REF_TOKEN.findall(raw):
        ordinals.setdefault(name, set()).add(int(num))
    remap = {
        (name, num): rank
        for name, nums in ordinals.items()
        for rank, num in enumerate(sorted(nums), start=1)
    }

    def canon(text: str) -> str:
        return _REF_TOKEN.sub(
            lambda m: f"{m.group(1)}#{remap[(m.group(1), int(m.group(2)))]}",
            text,
        )

    return _render_query(query, canon)


def batch_fingerprint(batch: BoundBatch) -> str:
    """The normalized SHA-256 fingerprint of a bound batch."""
    text = "\n--\n".join(_query_text(q) for q in batch.queries)
    return hashlib.sha256(text.encode()).hexdigest()


def query_fingerprint(query: BoundQuery) -> str:
    """The normalized SHA-256 fingerprint of one bound query."""
    return hashlib.sha256(_query_text(query).encode()).hexdigest()


def query_table_signature(query: BoundQuery) -> str:
    """The query's table signature: sorted physical tables, ``+``-joined.

    The per-query analogue of the paper's Step-1 signature (the multiset
    of base tables a subexpression touches): two queries whose signatures
    share a table *may* expose common subexpressions, and the coordinator
    uses exactly that — signature-bucket overlap — to decide which
    in-flight queries are worth merging into one shared optimization."""
    names = sorted(
        {
            t.physical_name.lower()
            for block in query.all_blocks()
            for t in block.tables
        }
    )
    return "+".join(names)


def batch_signatures(batch: BoundBatch) -> frozenset:
    """Every distinct per-query table signature in a batch."""
    return frozenset(query_table_signature(q) for q in batch.queries)


def config_key(options: OptimizerOptions, cost_model: CostModel) -> str:
    """A stable key for the optimizer configuration a plan depends on."""
    return f"{options!r}|{cost_model!r}"


def batch_tables(batch: BoundBatch) -> frozenset:
    """Lower-cased physical table names the batch reads (for invalidation)."""
    return frozenset(
        t.physical_name.lower()
        for block in batch.all_blocks()
        for t in block.tables
    )


def cache_key(
    batch: BoundBatch,
    database: Database,
    options: OptimizerOptions,
    cost_model: CostModel,
) -> CacheKey:
    """The composite plan-cache key for one lookup."""
    return (
        batch_fingerprint(batch),
        database.catalog_version,
        config_key(options, cost_model),
    )
