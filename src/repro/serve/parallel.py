"""Dependency-aware parallel execution of plan bundles.

The serial :class:`~repro.executor.executor.Executor` materializes every
root spool, then runs each query in turn. This executor instead schedules
the bundle's producer/consumer DAG (:mod:`repro.serve.schedule`) on a
``ThreadPoolExecutor``: each CSE spool materializes exactly once — its task
is the latch; consumers are only submitted after every spool they read has
completed — while independent queries run concurrently.

Correctness model:

* Each task runs with its *own* :class:`ExecutionContext` (metrics and
  op-stat maps are thread-local to the task) over a *shared* spool map.
  The map is only written by a spool task before any of its consumers
  start, and :class:`WorkTable` columns are immutable once loaded, so
  consumers see fully materialized spools without further locking.
* Per-task metrics are merged in schedule order (spools first, then
  queries in batch order) — the same accumulation order as the serial
  executor — so deterministic counters (rows, spool accounting) are
  identical and float totals agree to rounding.
* Worker exceptions are captured and re-raised in the calling thread after
  in-flight tasks drain; nothing leaks into the pool.

Results are byte-identical to serial execution: every operator is
order-preserving and tasks do not share mutable state.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..errors import ExecutionError, QueryCancelledError
from ..executor.executor import BatchResult, Executor, QueryResult
from ..executor.iterators import materialize_spool
from ..executor.runtime import ExecutionContext, ExecutionMetrics, KeyFactorCache
from ..executor.scans import ScanManager
from ..obs import MetricsRegistry, OperatorStats, SpanContext, Tracer
from ..optimizer.cost import CostModel
from ..optimizer.engine import PlanBundle
from ..optimizer.physical import PhysicalPlan
from ..storage.database import Database
from ..storage.worktable import WorkTable
from .governor import CancellationToken
from .schedule import Schedule, TaskSpec, build_schedule


class _TaskOutcome:
    """What one finished task hands back for deterministic merging."""

    __slots__ = ("metrics", "op_stats", "result", "plan")

    def __init__(
        self,
        metrics: ExecutionMetrics,
        op_stats: Optional[Dict[int, OperatorStats]],
        result: Optional[QueryResult] = None,
        plan: Optional[PhysicalPlan] = None,
    ) -> None:
        self.metrics = metrics
        self.op_stats = op_stats
        self.result = result
        self.plan = plan


class ParallelExecutor(Executor):
    """Executes plan bundles over their spool DAG on a thread pool."""

    def __init__(
        self,
        database: Database,
        cost_model: Optional[CostModel] = None,
        registry: Optional[MetricsRegistry] = None,
        workers: int = 2,
        tracer: Optional[Tracer] = None,
        shared_scans: bool = True,
        morsel_rows: int = 4096,
    ) -> None:
        super().__init__(
            database,
            cost_model,
            registry=registry,
            tracer=tracer,
            shared_scans=shared_scans,
            morsel_rows=morsel_rows,
        )
        if workers < 1:
            raise ExecutionError("workers must be positive")
        self.workers = workers

    def execute(
        self,
        bundle: PlanBundle,
        collect_op_stats: bool = False,
        token: Optional[CancellationToken] = None,
    ) -> BatchResult:
        """Execute a bundle with dependency-aware parallelism.

        ``token`` is shared by every task: a deadline/budget trip in one
        task cancels the token, so siblings abort at their next cooperative
        checkpoint and not-yet-submitted dependents are never started."""
        if self.workers == 1:
            return super().execute(bundle, collect_op_stats, token=token)
        start = time.perf_counter()
        schedule = build_schedule(bundle, include_scans=self.shared_scans)
        # One dict build for the whole batch: the per-task lookup used to
        # rebuild dict(bundle.root_spools) inside every spool task, an
        # O(spools²) rescan of the bundle under a wide DAG.
        spool_bodies: Dict[str, PhysicalPlan] = dict(bundle.root_spools)
        # A batch-internal token (flag-only checks) when ungoverned, so
        # first-failure propagation below can always cancel the DAG.
        if token is None:
            token = CancellationToken()
        spools: Dict[str, WorkTable] = {}
        # Producer span ids, shared batch-wide like ``spools`` (written by
        # a spool task before its consumers are submitted).
        spool_spans: Dict[str, int] = {}
        # One scan manager for the whole batch, shared by every task's
        # context the same way ``spools`` is: per-key locks make each
        # physical fetch exactly-once, so merged totals stay deterministic.
        scans = ScanManager() if self.shared_scans else None
        # One key-factorization memo for the whole batch: spool reads and
        # shared scans alias arrays across tasks, so consumers of the same
        # CSE reuse each other's ``np.unique`` work.
        factor_cache = KeyFactorCache()
        with self.tracer.span(
            "execute_batch",
            queries=len(bundle.queries),
            workers=self.workers,
        ):
            # The batch span, captured while open: every task stamps it
            # into its spec and re-attaches it on the worker thread, so no
            # worker-side span is orphaned from the batch root.
            batch_context = self.tracer.current_context()
            outcomes = self._run_schedule(
                schedule,
                bundle,
                spool_bodies,
                spools,
                spool_spans,
                collect_op_stats,
                token,
                batch_context,
                scans,
                factor_cache,
            )
        metrics = ExecutionMetrics()
        op_stats: Optional[Dict[int, OperatorStats]] = (
            {} if collect_op_stats else None
        )
        results: List[QueryResult] = []
        executed_plans: Dict[str, PhysicalPlan] = {}
        # Merge in schedule order == serial accumulation order.
        for task in schedule.tasks:
            outcome = outcomes[task.index]
            metrics.merge(outcome.metrics)
            if op_stats is not None and outcome.op_stats:
                for node_id, stats in outcome.op_stats.items():
                    slot = op_stats.get(node_id)
                    if slot is None:
                        op_stats[node_id] = slot = OperatorStats()
                    slot.merge(stats)
            if task.kind == "query":
                results.append(outcome.result)
                executed_plans[task.label] = outcome.plan
        wall = time.perf_counter() - start
        # The cache is batch-global (per-task metrics carry no counts), so
        # the merged totals pick them up exactly once here.
        metrics.key_factorizations = factor_cache.factorizations
        metrics.key_factor_reuses = factor_cache.reuses
        metrics.publish(self.registry)
        self.registry.timer_add("executor.wall", wall)
        self.registry.counter("executor.parallel_batches")
        self.registry.gauge("executor.parallel_workers", self.workers)
        return BatchResult(
            results=results,
            metrics=metrics,
            wall_time=wall,
            op_stats=op_stats,
            executed_plans=executed_plans,
        )

    # ------------------------------------------------------------------

    def _task_context(
        self,
        spools: Dict[str, WorkTable],
        spool_spans: Dict[str, int],
        collect_op_stats: bool,
        token: Optional[CancellationToken] = None,
        scans: Optional[ScanManager] = None,
        factor_cache: Optional[KeyFactorCache] = None,
    ) -> ExecutionContext:
        return ExecutionContext(
            database=self.database,
            cost_model=self.cost_model,
            registry=self.registry,
            spools=spools,
            spool_spans=spool_spans,
            op_stats={} if collect_op_stats else None,
            token=token,
            tracer=self.tracer,
            scans=scans,
            morsel_rows=self.morsel_rows,
            factor_cache=factor_cache,
        )

    def _run_task(
        self,
        task: TaskSpec,
        bundle: PlanBundle,
        spool_bodies: Dict[str, PhysicalPlan],
        spools: Dict[str, WorkTable],
        spool_spans: Dict[str, int],
        collect_op_stats: bool,
        token: Optional[CancellationToken],
        scans: Optional[ScanManager] = None,
        factor_cache: Optional[KeyFactorCache] = None,
    ) -> _TaskOutcome:
        ctx = self._task_context(
            spools, spool_spans, collect_op_stats, token, scans, factor_cache
        )
        start = time.perf_counter()
        outcome = "ok"
        try:
            # Re-establish the batch span on this worker thread, then open
            # the task's own span under it: all the executor spans below
            # (spool_materialize / query / op:*) chain up to the batch root.
            with self.tracer.attach(task.span_context), self.tracer.span(
                "task", kind=task.kind, label=task.label
            ):
                return self._run_task_body(
                    task, bundle, spool_bodies, spools, ctx
                )
        except QueryCancelledError:
            outcome = "cancelled"
            raise
        except BaseException:
            outcome = "error"
            raise
        finally:
            # Latency is recorded for every task, not just successes —
            # otherwise the slowest (failing/timed-out) tasks vanish from
            # the p99 — with the outcome tagged on the Prometheus series.
            self.registry.observe(
                "executor.task_seconds",
                time.perf_counter() - start,
                labels={"outcome": outcome},
            )

    def _run_task_body(
        self,
        task: TaskSpec,
        bundle: PlanBundle,
        spool_bodies: Dict[str, PhysicalPlan],
        spools: Dict[str, WorkTable],
        ctx: ExecutionContext,
    ) -> _TaskOutcome:
        if task.kind == "scan":
            # Prewarm one shared (table, columns) group: the single
            # physical fetch happens here, off the consumers' critical
            # path; consumers (which depend on this task) alias the
            # cached arrays. The fetch charge lands in this task's
            # metrics — totals still merge deterministically because the
            # manager's locks make the charge exactly-once batch-wide.
            assert ctx.scans is not None and task.scan is not None
            physical, names = task.scan
            ctx.scans.prewarm(physical, frozenset(names), ctx)
            return _TaskOutcome(ctx.metrics, ctx.op_stats)
        if task.kind == "spool":
            body = spool_bodies[task.label]
            if task.label not in spools:
                worktable = materialize_spool(task.label, body, ctx)
                # Publishing the finished table is the consumers' latch:
                # their tasks are only submitted after this one
                # completes — and it happens only after every budget
                # charge passed, so a cancelled task never leaves a
                # partial spool in the shared map.
                spools[task.label] = worktable
            return _TaskOutcome(ctx.metrics, ctx.op_stats)
        query_plan = next(
            q for q in bundle.queries if q.name == task.label
        )
        result, plan = self._execute_query(query_plan, ctx)
        return _TaskOutcome(ctx.metrics, ctx.op_stats, result, plan)

    def _run_schedule(
        self,
        schedule: Schedule,
        bundle: PlanBundle,
        spool_bodies: Dict[str, PhysicalPlan],
        spools: Dict[str, WorkTable],
        spool_spans: Dict[str, int],
        collect_op_stats: bool,
        token: CancellationToken,
        batch_context: Optional[SpanContext] = None,
        scans: Optional[ScanManager] = None,
        factor_cache: Optional[KeyFactorCache] = None,
    ) -> Dict[int, _TaskOutcome]:
        """Topological wave scheduling with bounded workers."""
        outcomes: Dict[int, _TaskOutcome] = {}
        waiting = {task.index: set(task.deps) for task in schedule.tasks}
        dependents: Dict[int, List[TaskSpec]] = {}
        for task in schedule.tasks:
            for dep in task.deps:
                dependents.setdefault(dep, []).append(task)
        by_index = {task.index: task for task in schedule.tasks}
        failure: Optional[BaseException] = None
        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-worker"
        ) as pool:
            running: Dict[Future, int] = {}

            def submit(task: TaskSpec) -> None:
                # Stamp the batch span into the spec at submit time: the
                # worker thread re-attaches it (Tracer.attach) so its
                # spans join the batch root's tree.
                if batch_context is not None:
                    task = replace(task, span_context=batch_context)
                future = pool.submit(
                    self._run_task,
                    task,
                    bundle,
                    spool_bodies,
                    spools,
                    spool_spans,
                    collect_op_stats,
                    token,
                    scans,
                    factor_cache,
                )
                running[future] = task.index

            for task in schedule.tasks:
                if not waiting[task.index]:
                    submit(task)
            while running:
                done, _ = wait(set(running), return_when=FIRST_COMPLETED)
                for future in done:
                    index = running.pop(future)
                    error = future.exception()
                    if error is not None:
                        # Remember the failure; stop submitting new work
                        # and cancel the shared token so in-flight siblings
                        # drain at their next checkpoint instead of running
                        # to completion. The root cause wins over the
                        # cancellations it induces in siblings.
                        if failure is None or (
                            isinstance(failure, QueryCancelledError)
                            and not isinstance(error, QueryCancelledError)
                        ):
                            failure = error
                        token.cancel(
                            f"task {by_index[index].label!r} failed: {error}"
                        )
                        continue
                    outcomes[index] = future.result()
                    if failure is not None:
                        continue
                    for dependent in dependents.get(index, ()):
                        pending = waiting[dependent.index]
                        pending.discard(index)
                        if not pending:
                            submit(dependent)
        if failure is not None:
            raise failure
        if len(outcomes) != len(schedule.tasks):
            unfinished = sorted(
                by_index[i].label
                for i in waiting
                if i not in outcomes
            )
            raise ExecutionError(
                f"schedule deadlock; unfinished tasks: {unfinished}"
            )
        return outcomes
