"""Normalization of logical operator trees into SPJG query blocks.

The paper works over the normal form ``σ_p(T1 × T2 × … × Tn)`` with an
optional group-by and projection on top (§4.1). ``normalize_tree`` converts
any SPJG-shaped operator tree into that form by pulling all selections and
join predicates into one conjunct list. Trees that are not SPJG-shaped (e.g.
a join above a group-by) are rejected; the binder produces blocks for those
directly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import OptimizerError
from ..expr.expressions import AggExpr, ColumnRef, Expr, TableRef
from ..expr.predicates import split_conjuncts
from .blocks import OutputColumn, QueryBlock
from .operators import Get, GroupBy, Join, LogicalOperator, Project, Select, Spool


def _flatten_spj(
    node: LogicalOperator,
) -> Tuple[List[TableRef], List[Expr]]:
    """Flatten a Select/Join/Get subtree into (tables, conjuncts)."""
    if isinstance(node, Get):
        return [node.table_ref], []
    if isinstance(node, Select):
        tables, conjuncts = _flatten_spj(node.child)
        conjuncts = conjuncts + split_conjuncts(node.predicate)
        return tables, conjuncts
    if isinstance(node, Join):
        left_tables, left_conjuncts = _flatten_spj(node.left)
        right_tables, right_conjuncts = _flatten_spj(node.right)
        conjuncts = left_conjuncts + right_conjuncts
        if node.predicate is not None:
            conjuncts = conjuncts + split_conjuncts(node.predicate)
        return left_tables + right_tables, conjuncts
    if isinstance(node, Project):
        # An interior projection discards columns; normalization keeps the
        # full column space and relies on required-column analysis instead.
        return _flatten_spj(node.child)
    raise OptimizerError(
        f"operator {type(node).__name__} is not part of an SPJ subtree"
    )


def normalize_tree(
    tree: LogicalOperator, name: str = "query"
) -> QueryBlock:
    """Normalize an SPJG operator tree into a :class:`QueryBlock`.

    Accepted shapes, outermost first: an optional :class:`Spool`, an optional
    :class:`Project`, optional ``Select`` conjuncts above a group-by
    (HAVING), an optional :class:`GroupBy`, then a Select/Join/Get tree.
    """
    node = tree
    if isinstance(node, Spool):
        node = node.child

    output: Optional[Tuple[OutputColumn, ...]] = None
    if isinstance(node, Project):
        output = tuple(
            OutputColumn(name=f"col{i}", expr=e) for i, e in enumerate(node.exprs)
        )
        node = node.child

    having: List[Expr] = []
    while isinstance(node, Select) and _selects_over_groupby(node):
        having = split_conjuncts(node.predicate) + having
        node = node.child

    group_keys: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[AggExpr, ...] = ()
    if isinstance(node, GroupBy):
        group_keys = node.keys
        aggregates = node.aggregates
        node = node.child

    tables, conjuncts = _flatten_spj(node)

    if output is None:
        if group_keys or aggregates:
            exprs: List[Expr] = list(group_keys) + list(aggregates)
            output = tuple(
                OutputColumn(name=f"col{i}", expr=e) for i, e in enumerate(exprs)
            )
        else:
            output = ()  # "all required columns" — resolved by the consumer

    return QueryBlock(
        name=name,
        tables=tuple(tables),
        conjuncts=tuple(conjuncts),
        output=output,
        group_keys=group_keys,
        aggregates=aggregates,
        having=tuple(having),
    )


def _selects_over_groupby(node: Select) -> bool:
    """Whether a Select sits (possibly via more Selects) above a GroupBy."""
    child = node.child
    while isinstance(child, Select):
        child = child.child
    return isinstance(child, GroupBy)
