"""Logical simplification of extended queries.

The classical outer-join reduction: a LEFT OUTER extension whose
null-extended rows are provably rejected by a later filter behaves exactly
like an inner join, so the extension folds into the core SPJ block. The
proof comes from :mod:`repro.equiv` (abstract three-valued evaluation); the
fold is what lets an outer-join consumer share an inner-join spool — after
folding, the query is a plain SPJG block and every §4/§5 sharing rule
applies unchanged.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..equiv import Verdict, outer_join_reducible
from ..expr.expressions import ColumnRef, Comparison, ComparisonOp, Expr, TableRef
from .blocks import (
    BoundQuery,
    JoinExtension,
    OutputColumn,
    QueryBlock,
    QueryShape,
)


def simplify_query(query: BoundQuery) -> Tuple[BoundQuery, List[Tuple[str, Verdict]]]:
    """Fold provably-reducible LEFT OUTER extensions into the core block.

    Returns the (possibly) simplified query plus one ``(ext_id, verdict)``
    pair per left_outer extension, for the optimizer's decision journal.
    Semi/anti extensions are never folded (they change cardinality);
    a left_outer extension folds only when :func:`outer_join_reducible`
    *proves* some post-join filter null-rejecting on its tables.
    """
    if not query.extensions:
        return query, []
    post = query.post
    assert post is not None
    verdicts: List[Tuple[str, Verdict]] = []
    folded: List[JoinExtension] = []
    remaining: List[JoinExtension] = []
    for ext in query.extensions:
        if ext.kind != "left_outer":
            remaining.append(ext)
            continue
        verdict = outer_join_reducible(set(ext.block.tables), post.filters)
        verdicts.append((ext.ext_id, verdict))
        (folded if verdict.proved else remaining).append(ext)
    if not folded:
        return query, verdicts

    core = query.block
    tables: List[TableRef] = list(core.tables)
    conjuncts: List[Expr] = list(core.conjuncts)
    for ext in folded:
        tables.extend(ext.block.tables)
        conjuncts.extend(ext.block.conjuncts)
        for core_col, inner_col in ext.keys:
            conjuncts.append(Comparison(ComparisonOp.EQ, core_col, inner_col))

    # Filters over now-inner tables move into the block (ordinary WHERE
    # conjuncts, eligible for pushdown and sharing); filters touching a
    # surviving nullable extension stay post-join under 3VL.
    nullable: Set[TableRef] = {
        t for ext in remaining if ext.kind == "left_outer" for t in ext.block.tables
    }
    moved: List[Expr] = []
    kept_filters: List[Expr] = []
    for predicate in post.filters:
        if any(c.table_ref in nullable for c in predicate.columns()):
            kept_filters.append(predicate)
        else:
            moved.append(predicate)
    conjuncts.extend(moved)

    if not remaining:
        # Fully reduced: rebuild a plain SPJG block — the whole query
        # re-enters the ordinary sharing pipeline, aggregation included.
        block = QueryBlock(
            name=core.name,
            tables=tuple(tables),
            conjuncts=tuple(conjuncts),
            output=post.output,
            group_keys=post.group_keys,
            aggregates=post.aggregates,
            having=post.having,
        )
        return (
            BoundQuery(
                name=query.name,
                block=block,
                subqueries=query.subqueries,
                order_by=query.order_by,
            ),
            verdicts,
        )

    # Partially reduced: widen the core block, keep surviving extensions.
    needed: Set[ColumnRef] = set()
    for out in post.output:
        needed.update(out.expr.columns())
    for predicate in list(kept_filters) + list(post.having):
        needed.update(predicate.columns())
    needed.update(post.group_keys)
    for agg in post.aggregates:
        needed.update(agg.columns())
    for ext in remaining:
        needed.update(core_col for core_col, _ in ext.keys)
    core_set = set(tables)
    outputs = _named_columns({c for c in needed if c.table_ref in core_set})
    block = QueryBlock(
        name=core.name,
        tables=tuple(tables),
        conjuncts=tuple(conjuncts),
        output=outputs,
    )
    return (
        BoundQuery(
            name=query.name,
            block=block,
            subqueries=query.subqueries,
            order_by=query.order_by,
            extensions=tuple(remaining),
            post=QueryShape(
                group_keys=post.group_keys,
                aggregates=post.aggregates,
                having=post.having,
                output=post.output,
                filters=tuple(kept_filters),
            ),
        ),
        verdicts,
    )


def _named_columns(columns: Set[ColumnRef]) -> Tuple[OutputColumn, ...]:
    ordered = sorted(columns, key=repr)
    names: List[str] = []
    used: Set[str] = set()
    for col in ordered:
        name = col.column
        suffix = 1
        while name in used:
            name = f"{col.column}_{suffix}"
            suffix += 1
        used.add(name)
        names.append(name)
    return tuple(
        OutputColumn(name=name, expr=col)
        for name, col in zip(names, ordered)
    )
