"""Normalized SPJG query blocks and bound queries/batches.

A :class:`QueryBlock` is the normal form the paper uses in §4:
``[γ_keys;aggs] π_output σ_conjuncts (T1 × T2 × … × Tn)``. All predicate
conjuncts live in one flat list; equijoin structure is recovered from the
column-equality conjuncts via equivalence classes.

A :class:`BoundQuery` is one top-level query: a block plus presentation
details (HAVING, ORDER BY) and the blocks of any scalar subqueries it
references. A :class:`BoundBatch` ties several queries together under the
paper's "dummy root operator" (§2, footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import OptimizerError
from ..expr.expressions import (
    AggExpr,
    ColumnRef,
    Expr,
    TableRef,
)
from ..expr.predicates import EquivalenceClasses, split_conjuncts
from ..types import DataType


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A placeholder for the scalar result of an uncorrelated subquery.

    The subquery's block lives in the enclosing :class:`BoundQuery`; at
    execution time the subquery plan runs first and this expression is
    replaced by the resulting constant.
    """

    subquery_id: str
    data_type: DataType = field(compare=False, hash=False, default=DataType.FLOAT)

    def __repr__(self) -> str:
        return f"$subquery:{self.subquery_id}"


@dataclass(frozen=True)
class OutputColumn:
    """One output column of a block: a name and the defining expression.

    For aggregated blocks the expression is over group keys and
    :class:`AggExpr` results (e.g. ``sum(l_extendedprice)`` or arithmetic
    over aggregates).
    """

    name: str
    expr: Expr

    def __repr__(self) -> str:
        return f"{self.expr!r} AS {self.name}"


@dataclass(frozen=True)
class QueryBlock:
    """Normalized SPJG block.

    ``tables`` are the cross-product inputs; ``conjuncts`` the WHERE
    predicate in CNF; ``group_keys``/``aggregates`` the optional γ on top;
    ``output`` the final projection; ``having`` conjuncts apply above γ.
    """

    name: str
    tables: Tuple[TableRef, ...]
    conjuncts: Tuple[Expr, ...]
    output: Tuple[OutputColumn, ...]
    group_keys: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[AggExpr, ...] = ()
    having: Tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.tables)) != len(self.tables):
            raise OptimizerError(f"block {self.name!r}: duplicate table instance")
        if self.aggregates and not self.has_groupby:
            # Aggregates without GROUP BY form a single implicit group; we
            # model that as a group-by with no keys.
            pass
        table_set = set(self.tables)
        for conjunct in self.conjuncts:
            for column in conjunct.columns():
                if column.table_ref not in table_set:
                    raise OptimizerError(
                        f"block {self.name!r}: predicate references "
                        f"{column!r} outside the block"
                    )

    @property
    def has_groupby(self) -> bool:
        """Whether the block aggregates."""
        return bool(self.group_keys) or bool(self.aggregates)

    @property
    def table_set(self) -> FrozenSet[TableRef]:
        """The block's table instances as a frozenset."""
        return frozenset(self.tables)

    def equivalence_classes(self) -> EquivalenceClasses:
        """Column equivalence classes from the block's equality conjuncts."""
        return EquivalenceClasses.from_conjuncts(self.conjuncts)

    def columns_of(self, table_ref: TableRef) -> FrozenSet[ColumnRef]:
        """Columns of ``table_ref`` referenced anywhere in the block."""
        needed = set()
        for conjunct in self.conjuncts:
            needed.update(c for c in conjunct.columns() if c.table_ref == table_ref)
        for key in self.group_keys:
            if key.table_ref == table_ref:
                needed.add(key)
        for agg in self.aggregates:
            needed.update(c for c in agg.columns() if c.table_ref == table_ref)
        for out in self.output:
            needed.update(c for c in out.expr.columns() if c.table_ref == table_ref)
        for conjunct in self.having:
            needed.update(c for c in conjunct.columns() if c.table_ref == table_ref)
        return frozenset(needed)

    def required_columns(self) -> FrozenSet[ColumnRef]:
        """All base columns the block touches."""
        needed = set()
        for table_ref in self.tables:
            needed.update(self.columns_of(table_ref))
        return frozenset(needed)

    def output_names(self) -> List[str]:
        """Output column names, in order."""
        return [o.name for o in self.output]


@dataclass(frozen=True)
class JoinExtension:
    """A non-inner join hanging off a query's core SPJ block.

    ``kind`` is one of ``"left_outer"``, ``"semi"``, ``"anti"``. The
    extension's own :class:`QueryBlock` (``block``) is a plain SPJ block —
    it participates in CSE detection and matching like any other block —
    and ``keys`` are the ``(core column, extension column)`` equality pairs
    that tie it to the core. Semi/anti extensions come from decorrelated
    EXISTS / IN subqueries; left_outer ones from LEFT OUTER JOIN clauses
    the normalizer could not prove reducible to inner joins.
    """

    ext_id: str
    kind: str
    block: QueryBlock
    keys: Tuple[Tuple[ColumnRef, ColumnRef], ...]


@dataclass(frozen=True)
class QueryShape:
    """The post-extension shape of an extended query.

    When a query carries :class:`JoinExtension` s, its core block is SPJ
    only and grouping/HAVING/projection apply *above* the extension joins
    (SQL semantics). ``filters`` are WHERE conjuncts that reference
    null-extended columns and therefore must run, under three-valued
    logic, after the outer join.
    """

    group_keys: Tuple[ColumnRef, ...]
    aggregates: Tuple[AggExpr, ...]
    having: Tuple[Expr, ...]
    output: Tuple[OutputColumn, ...]
    filters: Tuple[Expr, ...] = ()

    @property
    def has_groupby(self) -> bool:
        return bool(self.group_keys) or bool(self.aggregates)


@dataclass
class BoundQuery:
    """A bound top-level query: its block, subquery blocks, and ORDER BY."""

    name: str
    block: QueryBlock
    subqueries: Dict[str, QueryBlock] = field(default_factory=dict)
    order_by: Tuple[Tuple[Expr, bool], ...] = ()  # (expr, descending)
    extensions: Tuple[JoinExtension, ...] = ()
    post: Optional[QueryShape] = None

    def all_blocks(self) -> List[QueryBlock]:
        return (
            [self.block]
            + list(self.subqueries.values())
            + [e.block for e in self.extensions]
        )


@dataclass
class BoundBatch:
    """A batch of queries optimized together under a dummy root (§2 fn. 1)."""

    queries: List[BoundQuery]

    def __post_init__(self) -> None:
        names = [q.name for q in self.queries]
        if len(set(names)) != len(names):
            raise OptimizerError(f"duplicate query names in batch: {names}")
        instances = [t for q in self.queries for b in q.all_blocks() for t in b.tables]
        if len(set(instances)) != len(instances):
            raise OptimizerError("table instances shared across blocks")

    def all_blocks(self) -> List[QueryBlock]:
        return [b for q in self.queries for b in q.all_blocks()]

    def query(self, name: str) -> BoundQuery:
        """One query of the batch, by name."""
        for q in self.queries:
            if q.name == name:
                return q
        raise OptimizerError(f"no query named {name!r} in batch")
