"""Logical algebra: operator trees and normalized SPJG query blocks."""

from .operators import (
    Get,
    GroupBy,
    Join,
    LogicalOperator,
    Project,
    Select,
    Spool,
)
from .blocks import OutputColumn, QueryBlock, BoundQuery, BoundBatch
from .normalize import normalize_tree

__all__ = [
    "Get",
    "GroupBy",
    "Join",
    "LogicalOperator",
    "Project",
    "Select",
    "Spool",
    "OutputColumn",
    "QueryBlock",
    "BoundQuery",
    "BoundBatch",
    "normalize_tree",
]
