"""Logical operator trees.

These are the SPJG operators of the paper (§3): Get (table/view access),
Select, Project, Join, GroupBy, and Spool. The binder produces operator
trees; :mod:`repro.logical.normalize` converts them to normalized
:class:`~repro.logical.blocks.QueryBlock` form for the optimizer; and the
table-signature rules of Figure 2 are defined directly over these trees
(:mod:`repro.cse.signature`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import OptimizerError
from ..expr.expressions import AggExpr, ColumnRef, Expr, TableRef


class LogicalOperator:
    """Base class for logical operators."""

    def children(self) -> Tuple["LogicalOperator", ...]:
        return ()

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()

    def tables(self) -> Tuple[TableRef, ...]:
        """All table instances referenced in this subtree, in tree order."""
        found = []
        for node in self.walk():
            if isinstance(node, Get):
                found.append(node.table_ref)
        return tuple(found)


@dataclass(frozen=True)
class Get(LogicalOperator):
    """Access one table (or view/work-table) instance."""

    table_ref: TableRef

    def __repr__(self) -> str:
        return f"Get({self.table_ref!r})"


@dataclass(frozen=True)
class Select(LogicalOperator):
    """Filter rows by a predicate."""

    predicate: Expr
    child: LogicalOperator

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"Select({self.predicate!r}, {self.child!r})"


@dataclass(frozen=True)
class Project(LogicalOperator):
    """Restrict/compute output columns. ``exprs`` are the output expressions."""

    exprs: Tuple[Expr, ...]
    child: LogicalOperator

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"Project({list(self.exprs)!r}, {self.child!r})"


@dataclass(frozen=True)
class Join(LogicalOperator):
    """Inner join with an optional predicate (None means cross product)."""

    predicate: Optional[Expr]
    left: LogicalOperator
    right: LogicalOperator

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"Join({self.predicate!r}, {self.left!r}, {self.right!r})"


@dataclass(frozen=True)
class GroupBy(LogicalOperator):
    """Group by columns and compute aggregate expressions."""

    keys: Tuple[ColumnRef, ...]
    aggregates: Tuple[AggExpr, ...]
    child: LogicalOperator

    def __post_init__(self) -> None:
        for key in self.keys:
            if not isinstance(key, ColumnRef):
                raise OptimizerError(
                    f"GROUP BY supports plain columns only, got {key!r}"
                )

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return (
            f"GroupBy(keys={list(self.keys)!r}, aggs={list(self.aggregates)!r}, "
            f"{self.child!r})"
        )


@dataclass(frozen=True)
class Spool(LogicalOperator):
    """Materialize the child's result into a work table (the CSE top, §2.2)."""

    child: LogicalOperator
    label: str = ""

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"Spool({self.label!r}, {self.child!r})"
